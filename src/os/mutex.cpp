#include "os/mutex.hpp"

#include <algorithm>
#include <cassert>

namespace aqm::os {

struct PiMutex::State {
  Cpu* cpu = nullptr;
  bool priority_inheritance = true;

  bool locked = false;
  std::uint64_t holder_epoch = 0;     // invalidates stale guards
  JobId holder_job = 0;               // 0 = not yet associated
  Priority holder_base = kMinPriority;  // holder's un-boosted priority
  bool holder_boosted = false;
  std::uint64_t boosts = 0;

  struct Waiter {
    Priority priority;
    std::uint64_t seq;
    GrantedFn granted;
  };
  std::deque<Waiter> waiters;
  std::uint64_t next_seq = 0;

  void maybe_boost_holder() {
    if (!priority_inheritance || !locked || holder_job == 0 || waiters.empty()) return;
    Priority top = kMinPriority;
    for (const auto& w : waiters) top = std::max(top, w.priority);
    if (top <= holder_base) return;
    const auto current = cpu->base_priority(holder_job);
    if (!current) return;  // holder job already completed
    if (*current < top) {
      cpu->set_base_priority(holder_job, top);
      holder_boosted = true;
      ++boosts;
    }
  }

  void restore_holder() {
    if (holder_boosted && holder_job != 0) {
      cpu->set_base_priority(holder_job, holder_base);  // no-op if gone
    }
    holder_boosted = false;
    holder_job = 0;
  }
};

struct PiMutex::Guard::Token {
  std::shared_ptr<State> mutex_state;
  std::uint64_t epoch = 0;

  [[nodiscard]] bool current() const {
    return mutex_state && mutex_state->locked && mutex_state->holder_epoch == epoch;
  }
};

PiMutex::PiMutex(Cpu& cpu, bool priority_inheritance) : state_(std::make_shared<State>()) {
  state_->cpu = &cpu;
  state_->priority_inheritance = priority_inheritance;
}

void PiMutex::acquire(Priority priority, GrantedFn on_granted) {
  assert(on_granted);
  State& s = *state_;
  if (!s.locked) {
    s.locked = true;
    ++s.holder_epoch;
    s.holder_base = priority;
    s.holder_job = 0;
    s.holder_boosted = false;
    auto token = std::make_shared<Guard::Token>();
    token->mutex_state = state_;
    token->epoch = s.holder_epoch;
    on_granted(Guard{std::move(token)});
    return;
  }
  s.waiters.push_back(State::Waiter{priority, s.next_seq++, std::move(on_granted)});
  s.maybe_boost_holder();
}

bool PiMutex::locked() const { return state_->locked; }

std::size_t PiMutex::waiter_count() const { return state_->waiters.size(); }

std::uint64_t PiMutex::inheritance_boosts() const { return state_->boosts; }

void PiMutex::Guard::set_holder_job(JobId job) {
  if (!state_ || !state_->current()) return;
  State& s = *state_->mutex_state;
  s.holder_job = job;
  s.maybe_boost_holder();
}

void PiMutex::Guard::release() {
  if (!state_ || !state_->current()) return;  // stale or double release
  State& s = *state_->mutex_state;
  s.restore_holder();
  s.locked = false;

  if (s.waiters.empty()) return;
  // Grant the highest-priority waiter (FIFO within a priority).
  auto best = s.waiters.begin();
  for (auto it = s.waiters.begin(); it != s.waiters.end(); ++it) {
    if (it->priority > best->priority ||
        (it->priority == best->priority && it->seq < best->seq)) {
      best = it;
    }
  }
  State::Waiter next = std::move(*best);
  s.waiters.erase(best);

  s.locked = true;
  ++s.holder_epoch;
  s.holder_base = next.priority;
  s.holder_job = 0;
  s.holder_boosted = false;
  auto token = std::make_shared<Token>();
  token->mutex_state = state_->mutex_state;
  token->epoch = s.holder_epoch;
  next.granted(Guard{std::move(token)});
  // New waiters may already outrank the new holder.
  s.maybe_boost_holder();
}

}  // namespace aqm::os

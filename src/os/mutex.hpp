// Priority-inheritance mutex.
//
// RT-CORBA standardizes "intra-process mutexes" precisely because plain
// mutexes invert priorities: a low-priority holder preempted by
// medium-priority work blocks a high-priority waiter indefinitely (the
// Mars Pathfinder failure mode). With basic priority inheritance the
// holder's job is boosted to the highest waiting priority until release.
//
// Usage follows the simulator's callback style:
//
//   mutex.acquire(priority, [&](PiMutex::Guard guard) {
//     const os::JobId job = cpu.submit_for(cs_cost, priority,
//                                          [guard]() mutable { guard.release(); });
//     guard.set_holder_job(job);  // boost target while others wait
//   });
//
// Waiters are granted in priority order (FIFO within a priority).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "os/cpu.hpp"

namespace aqm::os {

class PiMutex {
 public:
  class Guard;
  using GrantedFn = std::function<void(Guard)>;

  /// `priority_inheritance` = false gives a plain priority-queued mutex
  /// (for demonstrating the inversion the protocol prevents).
  explicit PiMutex(Cpu& cpu, bool priority_inheritance = true);

  /// Requests the lock on behalf of a task running at `priority`.
  /// `on_granted` runs (possibly immediately) when the lock is obtained.
  void acquire(Priority priority, GrantedFn on_granted);

  [[nodiscard]] bool locked() const;
  [[nodiscard]] std::size_t waiter_count() const;
  /// Number of times a holder was boosted by a waiter.
  [[nodiscard]] std::uint64_t inheritance_boosts() const;

  /// Handle the current holder uses to manage the critical section.
  class Guard {
   public:
    Guard() = default;

    /// Associates the holder's CPU job so inheritance can boost it.
    void set_holder_job(JobId job);

    /// Releases the lock (idempotent); the next waiter is granted.
    void release();

    [[nodiscard]] bool valid() const { return state_ != nullptr; }

   private:
    friend class PiMutex;
    struct Token;
    explicit Guard(std::shared_ptr<Token> state) : state_(std::move(state)) {}
    std::shared_ptr<Token> state_;
  };

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace aqm::os

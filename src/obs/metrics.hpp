// Unified metrics registry: named counters, gauges, summary stats and
// histograms, snapshot into plain mergeable data and emitted as JSON.
//
// Determinism contract (mirrors the parallel-execution contract of
// DESIGN.md §6): a registry is local to one trial, filled by that trial's
// single-threaded simulation, and snapshot()ed into the trial's result
// slot. Drivers merge snapshots in trial-index order, so the merged JSON
// is byte-identical for any --jobs value. All maps are name-sorted and
// doubles are printed with a fixed format, so "same inputs" means "same
// bytes".
//
// Merge semantics across shards/trials:
//  * counters    — sum.
//  * gauges      — each snapshot contributes one sample; merged output
//                  reports count/mean/min/max over shards (a deterministic
//                  way to combine "current value" metrics like utilization).
//  * stats       — Welford merge (RunningStats::merge).
//  * histograms  — bucket-wise sum (identical bounds required).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"

namespace aqm::obs {

class Counter {
 public:
  void inc(std::uint64_t d = 1) { v_ += d; }
  void set(std::uint64_t v) { v_ = v; }
  [[nodiscard]] std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) {
    v_ = v;
    set_ = true;
  }
  [[nodiscard]] double value() const { return v_; }
  [[nodiscard]] bool is_set() const { return set_; }

 private:
  double v_ = 0.0;
  bool set_ = false;
};

/// Plain-data snapshot of a registry; mergeable and serializable.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  /// Gauges become single-sample stats so merged output can report the
  /// spread across shards.
  std::map<std::string, RunningStats> gauges;
  std::map<std::string, RunningStats> stats;
  std::map<std::string, Histogram> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && stats.empty() && histograms.empty();
  }

  /// Merges another snapshot into this one (see merge semantics above).
  /// Histogram merges require identical bounds/bucket counts; mismatches
  /// keep the existing entry and are counted in `merge_conflicts`.
  void merge(const MetricsSnapshot& other);
  std::uint64_t merge_conflicts = 0;

  /// Deterministic JSON object: {"counters":{...},"gauges":{...},
  /// "stats":{...},"histograms":{...}}. `indent` is the number of leading
  /// spaces on nested lines (pretty, stable).
  void write_json(std::ostream& os, int indent = 0) const;
};

/// Live registry handed to components at export time (or held for the
/// trial's duration when incremental counting is wanted). Returned
/// references stay valid for the registry's lifetime (map nodes are
/// stable).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  RunningStats& stats(std::string_view name);
  /// Registers (or finds) a histogram. Bounds are fixed at first
  /// registration; later calls with the same name return the existing one.
  Histogram& histogram(std::string_view name, double lo, double hi, std::size_t buckets);

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + stats_.size() + histograms_.size();
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;
  void clear();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, RunningStats, std::less<>> stats_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// One trial's snapshot, labeled for the sidecar file.
struct NamedSnapshot {
  std::string name;
  MetricsSnapshot snapshot;
};

/// Writes the per-trial + merged metrics sidecar:
///   {"trials":[{"name":...,"metrics":{...}},...],"merged":{...}}
/// Trials must already be in index order; the merge folds them in that
/// order, so the output is byte-identical for any worker count.
void write_metrics_sidecar(std::ostream& os, const std::vector<NamedSnapshot>& trials);
bool write_metrics_sidecar_file(const std::string& path,
                                const std::vector<NamedSnapshot>& trials);

}  // namespace aqm::obs

// Causal tracing for the simulation: a pooled recorder of spans and
// instant events stamped with simulation time, exported as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Design constraints, in order:
//  * ~Free when disabled. Every instrumentation point is guarded by a
//    single pointer test (Engine::tracer_for returns nullptr unless a
//    recorder is attached AND wants the category), and the whole layer
//    compiles out with -DAQM_OBS_ENABLED=0.
//  * Allocation-free steady state when enabled. Events are 64-byte PODs
//    appended into recycled fixed-size chunks; names are `const char*`
//    (string literals or strings interned once per distinct label).
//  * Deterministic. Trace ids come from a per-recorder counter, tracks
//    from first-registration order, so the same trial produces the same
//    trace bytes on every run.
//
// Causality model: an end-to-end request allocates one trace id. The ORB
// propagates it in a GIOP service context (next to the RT-CORBA priority
// context, exactly how the paper propagates priority end-to-end) and
// stamps it on every network packet the request fragments into. Each
// layer records its events with that id, so Perfetto groups the client
// send, per-hop enqueue/dequeue/drop, server dispatch and downstream QuO
// reaction into one async track.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

#ifndef AQM_OBS_ENABLED
#define AQM_OBS_ENABLED 1
#endif

namespace aqm::obs {

/// Bitmask categories; one bit per instrumented layer.
enum class TraceCategory : std::uint32_t {
  Engine = 1u << 0,  // sim::Engine event dispatch
  Net = 1u << 1,     // links, queues, RED, token buckets, RSVP
  Orb = 1u << 2,     // request send/dispatch/reply, marshal, transport
  Os = 1u << 3,      // CPU reserves, priority changes
  Quo = 1u << 4,       // contract region transitions, syscond updates
  App = 1u << 5,       // driver/example-level annotations
  Pipeline = 1u << 6,  // per-interceptor invocation pipeline stages
};
inline constexpr std::uint32_t kAllCategories = 0xffffffffu;
/// Everything except the two very chatty lanes: per-event engine dispatch
/// and per-interceptor pipeline stages (opt in with kAllCategories).
inline constexpr std::uint32_t kDefaultCategories =
    kAllCategories & ~(static_cast<std::uint32_t>(TraceCategory::Engine) |
                       static_cast<std::uint32_t>(TraceCategory::Pipeline));

[[nodiscard]] const char* to_string(TraceCategory c);

enum class TracePhase : std::uint8_t {
  Complete,    // "X": span with explicit duration
  Instant,     // "i"
  AsyncBegin,  // "b": nestable async span, correlated by (category, id)
  AsyncEnd,    // "e"
  Counter,     // "C": sampled value, rendered as a track graph
};

/// Numeric key/value attached to an event. Keys are static or interned
/// strings; values are doubles (counters, queue depths, rates, ids).
struct TraceArg {
  const char* key;
  double value;
};

struct TraceEvent {
  const char* name = nullptr;  // static or interned; never owned here
  TracePhase phase = TracePhase::Instant;
  std::uint8_t argc = 0;
  std::uint16_t track = 0;  // lane index (Chrome "tid"), see TraceRecorder::track
  TraceCategory cat = TraceCategory::Engine;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;  // Complete only
  std::uint64_t id = 0;     // correlation id (0 = none)
  std::array<TraceArg, 2> args{};
};

/// Records trace events into pooled chunk storage. Single-threaded, like
/// the engine it observes; one recorder per trial keeps shard-parallel
/// sweeps trivially race-free.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::uint32_t categories = kDefaultCategories);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // --- configuration --------------------------------------------------------

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Flight-recorder mode: bound storage to roughly `max_events` (rounded
  /// up to whole chunks, at least one). Once the ring is full each new
  /// chunk overwrites the oldest one wholesale — chunk-granular loss, with
  /// the evicted event count reported by overwritten(). 0 (the default)
  /// restores unbounded recording. Call before recording starts.
  void set_ring_capacity(std::size_t max_events) {
    ring_chunks_ = max_events == 0 ? 0 : (max_events + kChunkEvents - 1) / kChunkEvents;
  }
  [[nodiscard]] std::size_t ring_capacity() const { return ring_chunks_ * kChunkEvents; }
  /// Events lost to ring overwrites since the last clear().
  [[nodiscard]] std::uint64_t overwritten() const { return overwritten_; }

  void set_categories(std::uint32_t mask) { categories_ = mask; }
  [[nodiscard]] std::uint32_t categories() const { return categories_; }
  [[nodiscard]] bool wants(TraceCategory c) const {
    return enabled_ && (categories_ & static_cast<std::uint32_t>(c)) != 0;
  }

  // --- identity -------------------------------------------------------------

  /// Allocates a fresh correlation id (per-recorder monotonic counter).
  [[nodiscard]] std::uint64_t next_id() { return ++last_id_; }

  /// Ambient causal context: the trace id of the request currently being
  /// processed (set around servant dispatch), so downstream effects that
  /// fire synchronously — QuO contract transitions, syscond updates —
  /// chain to their cause without plumbing an id through every signature.
  void set_current(std::uint64_t id) { current_ = id; }
  [[nodiscard]] std::uint64_t current() const { return current_; }

  /// Returns a stable lane index for a named track (Chrome "tid"). The
  /// same name always maps to the same index within one recorder.
  [[nodiscard]] std::uint16_t track(std::string_view name);

  /// Interns a dynamic string, returning a pointer that stays valid for
  /// the recorder's lifetime. Cold path: intended for labels built once
  /// (operation names, contract transitions), not per-event text.
  [[nodiscard]] const char* intern(std::string_view s);

  // --- recording ------------------------------------------------------------
  // Callers are expected to have checked wants(cat) already (the macros /
  // Engine::tracer_for pattern does); these still no-op when disabled so
  // misuse cannot crash.

  void instant(TraceCategory cat, const char* name, std::uint16_t track, TimePoint t,
               std::uint64_t id = 0, std::initializer_list<TraceArg> args = {}) {
    push(cat, TracePhase::Instant, name, track, t.ns(), 0, id, args);
  }
  void complete(TraceCategory cat, const char* name, std::uint16_t track, TimePoint start,
                Duration dur, std::uint64_t id = 0,
                std::initializer_list<TraceArg> args = {}) {
    push(cat, TracePhase::Complete, name, track, start.ns(), dur.ns(), id, args);
  }
  void async_begin(TraceCategory cat, const char* name, std::uint16_t track, TimePoint t,
                   std::uint64_t id, std::initializer_list<TraceArg> args = {}) {
    push(cat, TracePhase::AsyncBegin, name, track, t.ns(), 0, id, args);
  }
  void async_end(TraceCategory cat, const char* name, std::uint16_t track, TimePoint t,
                 std::uint64_t id, std::initializer_list<TraceArg> args = {}) {
    push(cat, TracePhase::AsyncEnd, name, track, t.ns(), 0, id, args);
  }
  void counter(TraceCategory cat, const char* name, std::uint16_t track, TimePoint t,
               double value) {
    push(cat, TracePhase::Counter, name, track, t.ns(), 0, 0, {{"value", value}});
  }

  // --- inspection / export --------------------------------------------------

  [[nodiscard]] std::size_t size() const { return total_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }
  [[nodiscard]] std::size_t track_count() const { return track_names_.size(); }

  /// Invokes fn(const TraceEvent&) over all events in record order
  /// (oldest surviving event first when the ring has wrapped).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (overwritten_ == 0) {
      for (const auto& chunk : chunks_) {
        for (std::size_t i = 0; i < chunk->n; ++i) fn(chunk->ev[i]);
      }
      return;
    }
    // Wrapped ring: every chunk is in use and the oldest sits just after
    // the active one in storage order.
    const std::size_t n = chunks_.size();
    for (std::size_t k = 1; k <= n; ++k) {
      const Chunk& chunk = *chunks_[(active_ + k) % n];
      for (std::size_t i = 0; i < chunk.n; ++i) fn(chunk.ev[i]);
    }
  }

  /// Drops all events but keeps chunk storage, track registry and interned
  /// strings, so a reused recorder stays allocation-free.
  void clear();

  /// Writes the whole trace as Chrome trace-event JSON ({"traceEvents":
  /// [...]}) with process/thread metadata naming the tracks.
  void write_chrome_json(std::ostream& os) const;
  /// Convenience: write_chrome_json to a file; false on I/O failure.
  bool write_chrome_json_file(const std::string& path) const;

 private:
  static constexpr std::size_t kChunkEvents = 2048;
  struct Chunk {
    std::size_t n = 0;
    std::array<TraceEvent, kChunkEvents> ev;
  };

  void push(TraceCategory cat, TracePhase phase, const char* name, std::uint16_t track,
            std::int64_t ts_ns, std::int64_t dur_ns, std::uint64_t id,
            std::initializer_list<TraceArg> args);

  bool enabled_ = true;
  std::uint32_t categories_ = kDefaultCategories;
  std::uint64_t last_id_ = 0;
  std::uint64_t current_ = 0;
  std::size_t total_ = 0;
  std::size_t active_ = 0;       // chunk currently being filled
  std::size_t ring_chunks_ = 0;  // 0 = unbounded; else max chunks kept
  std::uint64_t overwritten_ = 0;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::string> track_names_;
  std::map<std::string, std::uint16_t, std::less<>> track_index_;
  // Interned strings held by unique_ptr so c_str() pointers stay stable
  // while the vector grows.
  std::vector<std::unique_ptr<std::string>> interned_;
  std::map<std::string, const char*, std::less<>> intern_index_;
};

}  // namespace aqm::obs

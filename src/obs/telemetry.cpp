#include "obs/telemetry.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace aqm::obs {

TelemetryHub::TelemetryHub(TelemetryConfig cfg)
    : cfg_(cfg),
      bucket_ns_(cfg.bucket.ns()),
      latency_layout_(Histogram::log_scaled(cfg.latency_lo_ms, cfg.latency_hi_ms,
                                            cfg.latency_buckets)),
      window_ns_(cfg.bucket.ns() * static_cast<std::int64_t>(cfg.buckets)),
      window_scratch_(latency_layout_),
      flight_(kDefaultCategories),
      dump_source_(&flight_) {
  assert(bucket_ns_ > 0);
  assert(cfg_.buckets > 0);
  flight_.set_ring_capacity(cfg_.flight_capacity);
}

TelemetryHub::FlowState& TelemetryHub::flow_state(std::uint64_t flow) {
  if (flow == mru_flow_ && mru_flow_ != 0) return flows_[mru_slot_];
  const auto it = flow_index_.find(flow);
  std::uint32_t slot;
  if (it != flow_index_.end()) {
    slot = it->second;
  } else {
    slot = static_cast<std::uint32_t>(flows_.size());
    flows_.emplace_back();
    flows_.back().id = flow;
    flow_index_.emplace(flow, slot);
  }
  mru_flow_ = flow;
  mru_slot_ = slot;
  return flows_[slot];
}

void TelemetryHub::enable_window(FlowState& f, TimePoint now) {
  if (f.windowed) return;
  f.windowed = true;
  f.ring.reserve(cfg_.buckets);
  for (std::uint32_t i = 0; i < cfg_.buckets; ++i) f.ring.emplace_back(latency_layout_);
  // Bucket boundaries are integer multiples of the bucket width on the
  // simulation clock, so evaluation instants are deterministic regardless
  // of when monitoring was enabled.
  f.bucket_start_ns = (now.ns() / bucket_ns_) * bucket_ns_;
  f.recent_traces.assign(cfg_.recent_traces, 0);
}

void TelemetryHub::set_slo(std::uint64_t flow, const SloSpec& spec) {
  if (flow == 0) return;
  FlowState& f = flow_state(flow);
  f.spec = spec;
  f.has_spec = spec.any();
  if (f.has_spec) enable_window(f, TimePoint::zero());
}

void TelemetryHub::watch(std::uint64_t flow) {
  if (flow == 0) return;
  enable_window(flow_state(flow), TimePoint::zero());
}

void TelemetryHub::clear_slo(std::uint64_t flow) {
  const auto it = flow_index_.find(flow);
  if (it == flow_index_.end()) return;
  FlowState& f = flows_[it->second];
  f.spec = SloSpec{};
  f.has_spec = false;
  f.bad_streak = 0;
  f.good_streak = 0;
}

const SloSpec* TelemetryHub::slo(std::uint64_t flow) const {
  const auto it = flow_index_.find(flow);
  if (it == flow_index_.end() || !flows_[it->second].has_spec) return nullptr;
  return &flows_[it->second].spec;
}

void TelemetryHub::roll(FlowState& f, std::int64_t now_ns) {
  while (now_ns >= f.bucket_start_ns + bucket_ns_) {
    const std::int64_t boundary = f.bucket_start_ns + bucket_ns_;
    // The bucket that just completed updates the throughput EWMA before
    // the window is judged at this boundary.
    const double inst_bps = static_cast<double>(f.ring[f.cur].bytes) * 8.0e9 /
                            static_cast<double>(bucket_ns_);
    if (!f.ewma_seeded) {
      f.ewma_bps = inst_bps;
      f.ewma_seeded = true;
    } else {
      f.ewma_bps = cfg_.throughput_alpha * inst_bps +
                   (1.0 - cfg_.throughput_alpha) * f.ewma_bps;
    }
    evaluate(f, boundary);
    // Advance: the next slot holds the window's oldest bucket; retire it
    // from the incrementally-maintained aggregates and reuse its storage.
    f.cur = (f.cur + 1) % static_cast<std::uint32_t>(f.ring.size());
    Bucket& expiring = f.ring[f.cur];
    f.w_calls -= expiring.calls;
    f.w_misses -= expiring.misses;
    f.w_deliveries -= expiring.deliveries;
    f.w_drops -= expiring.drops;
    f.w_bytes -= expiring.bytes;
    expiring.calls = expiring.misses = expiring.deliveries = expiring.drops = 0;
    expiring.bytes = 0;
    expiring.latency.clear();
    f.bucket_start_ns = boundary;
  }
}

WindowStats TelemetryHub::window_stats(const FlowState& f) {
  WindowStats w;
  w.calls = f.w_calls;
  w.misses = f.w_misses;
  w.deliveries = f.w_deliveries;
  w.drops = f.w_drops;
  w.bytes = f.w_bytes;
  w.miss_rate = w.calls == 0 ? 0.0
                             : static_cast<double>(w.misses) / static_cast<double>(w.calls);
  const std::uint64_t seen = w.deliveries + w.drops;
  w.drop_rate = seen == 0 ? 0.0 : static_cast<double>(w.drops) / static_cast<double>(seen);
  // The window-wide latency histogram is materialized here, not maintained
  // per observation: merging K bucket histograms at an evaluation instant
  // amortizes to (K * buckets) / observations-per-bucket — far cheaper
  // than a second histogram add on every hot-path observation.
  window_scratch_.clear();
  for (const Bucket& b : f.ring) window_scratch_.merge(b.latency);
  w.p99_latency_ms =
      window_scratch_.count() == 0 ? 0.0 : window_scratch_.quantile(0.99);
  w.throughput_bps = f.ewma_seeded ? f.ewma_bps : 0.0;
  return w;
}

void TelemetryHub::evaluate(FlowState& f, std::int64_t t_ns) {
  if (!f.has_spec) return;
  const WindowStats w = window_stats(f);
  // Windows with no traffic at all are skipped as "clean": an idle flow
  // recovers (nothing is violated) rather than pinning a throughput
  // breach forever after load stops.
  const bool empty = w.calls == 0 && w.deliveries == 0 && w.drops == 0;
  const char* metric = nullptr;
  double value = 0.0;
  double threshold = 0.0;
  if (!empty) {
    const SloSpec& s = f.spec;
    if (s.max_miss_rate && w.miss_rate > *s.max_miss_rate) {
      metric = "miss_rate";
      value = w.miss_rate;
      threshold = *s.max_miss_rate;
    } else if (s.max_drop_rate && w.drop_rate > *s.max_drop_rate) {
      metric = "drop_rate";
      value = w.drop_rate;
      threshold = *s.max_drop_rate;
    } else if (s.max_p99_latency_ms && w.p99_latency_ms > *s.max_p99_latency_ms) {
      metric = "p99_latency_ms";
      value = w.p99_latency_ms;
      threshold = *s.max_p99_latency_ms;
    } else if (s.min_throughput_bps && f.ewma_seeded &&
               w.throughput_bps < *s.min_throughput_bps) {
      metric = "throughput_bps";
      value = w.throughput_bps;
      threshold = *s.min_throughput_bps;
    }
  }
  if (metric != nullptr) {
    f.good_streak = 0;
    ++f.bad_streak;
    if (!f.breached && f.bad_streak >= f.spec.breach_windows) {
      f.breached = true;
      f.breach_since_ns = t_ns;
      ++f.summary.breaches;
      events_.push_back({t_ns, f.id, true, metric, value, threshold, w});
      capture_dump(f, t_ns, metric);
    }
  } else {
    f.bad_streak = 0;
    ++f.good_streak;
    if (f.breached && f.good_streak >= f.spec.recover_windows) {
      f.breached = false;
      f.summary.breached_ns += t_ns - f.breach_since_ns;
      ++f.summary.recoveries;
      events_.push_back({t_ns, f.id, false, "recovered", 0.0, 0.0, w});
    }
  }
}

void TelemetryHub::note_trace(FlowState& f, std::uint64_t trace) {
  if (trace == 0 || f.recent_traces.empty()) return;
  f.recent_traces[f.recent_pos] = trace;
  f.recent_pos = (f.recent_pos + 1) % f.recent_traces.size();
}

void TelemetryHub::capture_dump(const FlowState& f, std::int64_t t_ns,
                                const char* metric) {
  if (dumps_.size() >= cfg_.max_dumps || dump_source_ == nullptr) return;
  FlightDump d;
  d.t_ns = t_ns;
  d.flow = f.id;
  d.metric = metric;
  d.ring_overwritten = dump_source_->overwritten();
  const std::int64_t lo = t_ns - window_ns_;
  dump_source_->for_each([&](const TraceEvent& e) {
    if (e.ts_ns < lo) return;
    bool implicated = false;
    if (e.id != 0) {
      for (const std::uint64_t id : f.recent_traces) {
        if (id != 0 && id == e.id) {
          implicated = true;
          break;
        }
      }
    }
    if (!implicated && e.argc > 0) {
      const auto flow_val = static_cast<double>(f.id);
      for (std::uint8_t i = 0; i < e.argc; ++i) {
        if (e.args[i].key != nullptr && std::string_view(e.args[i].key) == "flow" &&
            e.args[i].value == flow_val) {
          implicated = true;
          break;
        }
      }
    }
    if (!implicated) return;
    FlightEvent fe;
    fe.ts_ns = e.ts_ns;
    fe.cat = to_string(e.cat);
    fe.name = e.name != nullptr ? e.name : "?";
    fe.id = e.id;
    fe.argc = e.argc;
    for (std::uint8_t i = 0; i < e.argc; ++i) {
      fe.args[i] = {e.args[i].key != nullptr ? e.args[i].key : "?", e.args[i].value};
    }
    d.events.push_back(std::move(fe));
  });
  dumps_.push_back(std::move(d));
}

void TelemetryHub::on_deadline_miss(std::uint64_t flow, TimePoint now,
                                    std::uint64_t trace) {
  if (flow == 0) {
    ++global_misses_;
    return;
  }
  FlowState& f = flow_state(flow);
  ++f.total_calls;
  ++f.total_misses;
  note_trace(f, trace);
  if (!f.windowed) return;
  roll(f, now.ns());
  Bucket& b = f.ring[f.cur];
  ++b.calls;
  ++b.misses;
  ++f.w_calls;
  ++f.w_misses;
}

void TelemetryHub::on_retry(std::uint64_t flow, TimePoint now) {
  (void)now;
  if (flow == 0) return;
  ++flow_state(flow).total_retries;
}

void TelemetryHub::on_ce_mark(std::uint64_t flow, TimePoint now) {
  (void)now;
  if (flow == 0) return;
  ++flow_state(flow).total_ce_marks;
}

void TelemetryHub::on_queue_depth(std::size_t packets) {
  queue_depth_.add(static_cast<double>(packets));
}

void TelemetryHub::on_jitter(std::uint64_t flow, double jitter_ms) {
  if (flow == 0) return;
  flow_state(flow).jitter_ms.add(jitter_ms);
}

void TelemetryHub::on_reserve_overrun(std::uint64_t reserve_id, TimePoint now) {
  (void)reserve_id;
  (void)now;
  ++reserve_overruns_;
}

void TelemetryHub::poll(TimePoint now) {
  // Ascending flow-id order so same-boundary health events from different
  // flows land in the stream in a deterministic order.
  std::vector<std::uint64_t> ids;
  ids.reserve(flows_.size());
  for (const FlowState& f : flows_) {
    if (f.windowed) ids.push_back(f.id);
  }
  std::sort(ids.begin(), ids.end());
  for (const std::uint64_t id : ids) roll(flows_[flow_index_.at(id)], now.ns());
}

void TelemetryHub::finalize(TimePoint now) {
  poll(now);
  for (FlowState& f : flows_) {
    if (f.breached) {
      f.summary.breached_ns += now.ns() - f.breach_since_ns;
      f.breach_since_ns = now.ns();
    }
  }
}

bool TelemetryHub::breached(std::uint64_t flow) const {
  const auto it = flow_index_.find(flow);
  return it != flow_index_.end() && flows_[it->second].breached;
}

WindowStats TelemetryHub::window(std::uint64_t flow, TimePoint now) {
  if (flow == 0) return {};
  FlowState& f = flow_state(flow);
  if (!f.windowed) return {};
  roll(f, now.ns());
  return window_stats(f);
}

HealthReport TelemetryHub::report() const {
  HealthReport r;
  r.events = events_;
  for (const FlowState& f : flows_) {
    if (f.has_spec || f.summary.breaches > 0) r.flows.emplace(f.id, f.summary);
  }
  return r;
}

void TelemetryHub::export_metrics(MetricsRegistry& reg, std::string_view prefix) const {
  const std::string p(prefix);
  std::vector<std::uint64_t> ids;
  ids.reserve(flows_.size());
  for (const FlowState& f : flows_) ids.push_back(f.id);
  std::sort(ids.begin(), ids.end());
  for (const std::uint64_t id : ids) {
    const FlowState& f = flows_[flow_index_.at(id)];
    const std::string fp = p + ".flow" + std::to_string(id);
    reg.counter(fp + ".calls").inc(f.total_calls);
    reg.counter(fp + ".deadline_misses").inc(f.total_misses);
    reg.counter(fp + ".retries").inc(f.total_retries);
    reg.counter(fp + ".deliveries").inc(f.total_deliveries);
    reg.counter(fp + ".drops").inc(f.total_drops);
    reg.counter(fp + ".ce_marks").inc(f.total_ce_marks);
    reg.counter(fp + ".delivered_bytes").inc(f.total_bytes);
    if (!f.jitter_ms.empty()) reg.stats(fp + ".jitter_ms").merge(f.jitter_ms);
    if (f.has_spec || f.summary.breaches > 0) {
      reg.counter(fp + ".breaches").inc(f.summary.breaches);
      reg.counter(fp + ".recoveries").inc(f.summary.recoveries);
      reg.gauge(fp + ".breached_ms")
          .set(static_cast<double>(f.summary.breached_ns) / 1e6);
    }
  }
  if (!queue_depth_.empty()) reg.stats(p + ".queue_depth").merge(queue_depth_);
  reg.counter(p + ".reserve_overruns").inc(reserve_overruns_);
  reg.counter(p + ".health_events").inc(events_.size());
  reg.counter(p + ".flight_dumps").inc(dumps_.size());
  reg.counter(p + ".flight_overwritten").inc(flight_.overwritten());
  if (global_drops_ + global_deliveries_ + global_misses_ > 0) {
    reg.counter(p + ".unattributed.drops").inc(global_drops_);
    reg.counter(p + ".unattributed.deliveries").inc(global_deliveries_);
    reg.counter(p + ".unattributed.deadline_misses").inc(global_misses_);
  }
}

// --- sidecar writers --------------------------------------------------------

namespace {

void escape(std::string& out, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

/// Same fixed double format as the metrics sidecar: %.17g, null for
/// non-finite (DESIGN.md §7 determinism rules).
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_key(std::string& out, std::string_view key) {
  out += "\"";
  escape(out, key);
  out += "\":";
}

void append_window(std::string& out, const WindowStats& w) {
  out += "{";
  append_key(out, "calls");
  out += std::to_string(w.calls);
  out += ",";
  append_key(out, "misses");
  out += std::to_string(w.misses);
  out += ",";
  append_key(out, "deliveries");
  out += std::to_string(w.deliveries);
  out += ",";
  append_key(out, "drops");
  out += std::to_string(w.drops);
  out += ",";
  append_key(out, "bytes");
  out += std::to_string(w.bytes);
  out += ",";
  append_key(out, "miss_rate");
  append_double(out, w.miss_rate);
  out += ",";
  append_key(out, "drop_rate");
  append_double(out, w.drop_rate);
  out += ",";
  append_key(out, "p99_latency_ms");
  append_double(out, w.p99_latency_ms);
  out += ",";
  append_key(out, "throughput_bps");
  append_double(out, w.throughput_bps);
  out += "}";
}

void append_health_event(std::string& out, const HealthEvent& e) {
  out += "{";
  append_key(out, "t_ms");
  append_double(out, static_cast<double>(e.t_ns) / 1e6);
  out += ",";
  append_key(out, "flow");
  out += std::to_string(e.flow);
  out += ",";
  append_key(out, "type");
  out += e.breach ? "\"breach\"" : "\"recover\"";
  out += ",";
  append_key(out, "metric");
  out += "\"";
  escape(out, e.metric);
  out += "\",";
  append_key(out, "value");
  append_double(out, e.value);
  out += ",";
  append_key(out, "threshold");
  append_double(out, e.threshold);
  out += ",";
  append_key(out, "window");
  append_window(out, e.window);
  out += "}";
}

void write_health_object(std::ostream& os, const HealthReport& r, const char* p1) {
  std::string line;
  os << "{\n" << p1 << "  \"events\": [";
  bool first = true;
  for (const HealthEvent& e : r.events) {
    line.clear();
    line += first ? "\n" : ",\n";
    line += p1;
    line += "    ";
    append_health_event(line, e);
    os << line;
    first = false;
  }
  if (!first) os << "\n" << p1 << "  ";
  os << "],\n" << p1 << "  \"flows\": {";
  first = true;
  for (const auto& [flow, s] : r.flows) {
    line.clear();
    line += first ? "\n" : ",\n";
    line += p1;
    line += "    ";
    append_key(line, "flow" + std::to_string(flow));
    line += " {";
    append_key(line, "breaches");
    line += std::to_string(s.breaches);
    line += ",";
    append_key(line, "recoveries");
    line += std::to_string(s.recoveries);
    line += ",";
    append_key(line, "breached_ms");
    append_double(line, static_cast<double>(s.breached_ns) / 1e6);
    line += "}";
    os << line;
    first = false;
  }
  if (!first) os << "\n" << p1 << "  ";
  os << "}\n" << p1 << "}";
}

}  // namespace

void write_health_sidecar(std::ostream& os, const std::vector<NamedHealthReport>& trials) {
  os << "{\n  \"trials\": [";
  HealthReport merged;
  std::uint64_t merged_events = 0;
  bool first = true;
  for (const auto& t : trials) {
    std::string head;
    head += first ? "\n" : ",\n";
    head += "    {\"name\": \"";
    escape(head, t.name);
    head += "\", \"health\": ";
    os << head;
    write_health_object(os, t.report, "    ");
    os << "}";
    merged_events += t.report.events.size();
    for (const auto& [flow, s] : t.report.flows) {
      FlowHealthSummary& m = merged.flows[flow];
      m.breaches += s.breaches;
      m.recoveries += s.recoveries;
      m.breached_ns += s.breached_ns;
    }
    first = false;
  }
  os << (first ? "" : "\n  ") << "],\n  \"merged\": ";
  // The merged section sums summaries across trials (events stay in their
  // trials: they live on independent simulated timelines).
  std::string line;
  os << "{\n    \"events\": " << merged_events << ",\n    \"flows\": {";
  bool mfirst = true;
  for (const auto& [flow, s] : merged.flows) {
    line.clear();
    line += mfirst ? "\n" : ",\n";
    line += "      ";
    append_key(line, "flow" + std::to_string(flow));
    line += " {";
    append_key(line, "breaches");
    line += std::to_string(s.breaches);
    line += ",";
    append_key(line, "recoveries");
    line += std::to_string(s.recoveries);
    line += ",";
    append_key(line, "breached_ms");
    append_double(line, static_cast<double>(s.breached_ns) / 1e6);
    line += "}";
    os << line;
    mfirst = false;
  }
  os << (mfirst ? "" : "\n    ") << "}\n  }\n}\n";
}

bool write_health_sidecar_file(const std::string& path,
                               const std::vector<NamedHealthReport>& trials) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_health_sidecar(os, trials);
  os.flush();
  return static_cast<bool>(os);
}

void write_flight_sidecar(std::ostream& os, const std::vector<NamedFlightDumps>& trials) {
  os << "{\n  \"dumps\": [";
  std::string line;
  bool first = true;
  for (const auto& t : trials) {
    for (const FlightDump& d : t.dumps) {
      line.clear();
      line += first ? "\n" : ",\n";
      line += "    {";
      append_key(line, "trial");
      line += "\"";
      escape(line, t.name);
      line += "\",";
      append_key(line, "t_ms");
      append_double(line, static_cast<double>(d.t_ns) / 1e6);
      line += ",";
      append_key(line, "flow");
      line += std::to_string(d.flow);
      line += ",";
      append_key(line, "metric");
      line += "\"";
      escape(line, d.metric);
      line += "\",";
      append_key(line, "ring_overwritten");
      line += std::to_string(d.ring_overwritten);
      line += ",";
      append_key(line, "events");
      line += "[";
      os << line;
      bool efirst = true;
      for (const FlightEvent& e : d.events) {
        line.clear();
        line += efirst ? "\n      {" : ",\n      {";
        append_key(line, "t_ms");
        append_double(line, static_cast<double>(e.ts_ns) / 1e6);
        line += ",";
        append_key(line, "cat");
        line += "\"";
        escape(line, e.cat);
        line += "\",";
        append_key(line, "name");
        line += "\"";
        escape(line, e.name);
        line += "\",";
        append_key(line, "id");
        line += std::to_string(e.id);
        if (e.argc > 0) {
          line += ",";
          append_key(line, "args");
          line += "{";
          for (std::uint8_t i = 0; i < e.argc; ++i) {
            if (i > 0) line += ",";
            append_key(line, e.args[i].first);
            append_double(line, e.args[i].second);
          }
          line += "}";
        }
        line += "}";
        os << line;
        efirst = false;
      }
      os << (efirst ? "]}" : "\n    ]}");
      first = false;
    }
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
}

bool write_flight_sidecar_file(const std::string& path,
                               const std::vector<NamedFlightDumps>& trials) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_flight_sidecar(os, trials);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace aqm::obs

// Streaming QoS telemetry: always-on, allocation-free-in-steady-state
// sensing for the runtime control plane. Three pieces on top of the obs
// substrate (DESIGN.md §12):
//
//  * SloMonitor — per-flow sliding-window aggregations over a ring of
//    fixed time buckets on the engine clock: deadline-miss rate, drop
//    rate, log-bucketed latency quantiles (p50/p99 via the HDR-style
//    Histogram layout), and EWMA throughput; evaluated against per-flow
//    SLO specs with breach/recovery hysteresis.
//  * Flight recorder — a lossy bounded ring of TraceEvents (TraceRecorder
//    in ring mode) that is always on at near-zero cost; on SLO breach the
//    hub cuts the last window of events for the implicated flow/trace ids
//    into a dump, so post-mortems work without full tracing enabled.
//  * Health-event stream — deterministic breach/recovery transitions,
//    evaluated only at bucket-boundary instants (integer multiples of the
//    bucket width on the simulation clock), emitted as a name-sorted JSON
//    sidecar byte-identical for any --jobs, merged across workers like
//    the metrics registry.
//
// Layering: obs does not depend on net/orb/os, so flows are keyed by the
// raw std::uint64_t flow id (net::FlowId) and observation points pass
// simulation TimePoints explicitly. The engine carries one TelemetryHub
// pointer (Engine::set_telemetry) exactly like the tracer, so every
// instrumentation point costs a single pointer test when telemetry is
// detached and compiles out entirely with -DAQM_OBS_ENABLED=0.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aqm::obs {

/// Per-flow service-level objective. Only the set fields are evaluated;
/// rates are per sliding window, latency is the window p99, throughput is
/// an EWMA of per-bucket delivered goodput. Hysteresis: a flow must
/// violate for `breach_windows` consecutive window evaluations to breach
/// and be clean for `recover_windows` consecutive evaluations to recover.
struct SloSpec {
  std::optional<double> max_miss_rate;        // deadline misses / calls
  std::optional<double> max_drop_rate;        // drops / (deliveries + drops)
  std::optional<double> max_p99_latency_ms;   // window p99 of call latency
  std::optional<double> min_throughput_bps;   // EWMA delivered throughput
  std::uint32_t breach_windows = 2;
  std::uint32_t recover_windows = 2;

  [[nodiscard]] bool any() const {
    return max_miss_rate || max_drop_rate || max_p99_latency_ms || min_throughput_bps;
  }

  friend bool operator==(const SloSpec&, const SloSpec&) = default;
};

/// Aggregates over one full sliding window, captured at an evaluation
/// instant (a bucket boundary).
struct WindowStats {
  std::uint64_t calls = 0;       // completed + deadline-missed invocations
  std::uint64_t misses = 0;      // deadline misses
  std::uint64_t deliveries = 0;  // packets delivered at destination
  std::uint64_t drops = 0;       // packets dropped in the network
  std::uint64_t bytes = 0;       // delivered payload bytes
  double miss_rate = 0.0;
  double drop_rate = 0.0;
  double p99_latency_ms = 0.0;
  double throughput_bps = 0.0;  // EWMA, updated once per completed bucket
};

/// One breach or recovery transition in the deterministic health stream.
struct HealthEvent {
  std::int64_t t_ns = 0;       // evaluation instant (bucket boundary)
  std::uint64_t flow = 0;
  bool breach = false;         // false = recovery
  const char* metric = "";     // violated metric name; "recovered" on recovery
  double value = 0.0;          // observed value of that metric
  double threshold = 0.0;      // configured bound
  WindowStats window;          // window stats at the transition
};

/// Per-flow lifetime health accounting for the sidecar summary.
struct FlowHealthSummary {
  std::uint64_t breaches = 0;
  std::uint64_t recoveries = 0;
  std::int64_t breached_ns = 0;  // total simulated time spent breached
};

/// One trial's health stream: events in occurrence order plus name-sorted
/// per-flow summaries. Mergeable like MetricsSnapshot (summaries sum;
/// per-trial event lists are kept per trial, the merge counts them).
struct HealthReport {
  std::vector<HealthEvent> events;
  std::map<std::uint64_t, FlowHealthSummary> flows;
};

/// A copied-out flight-recorder event (cold path: names are owned strings
/// so dumps outlive the recorder's interning table).
struct FlightEvent {
  std::int64_t ts_ns = 0;
  const char* cat = "";  // category name (static)
  std::string name;
  std::uint64_t id = 0;
  std::uint8_t argc = 0;
  std::array<std::pair<std::string, double>, 2> args{};
};

/// The last window of flight-recorder events implicated in one breach.
struct FlightDump {
  std::int64_t t_ns = 0;        // breach evaluation instant
  std::uint64_t flow = 0;
  std::string metric;
  std::uint64_t ring_overwritten = 0;  // ring loss counter at dump time
  std::vector<FlightEvent> events;
};

struct TelemetryConfig {
  Duration bucket = milliseconds(100);  // window bucket width
  std::uint32_t buckets = 10;           // window = bucket * buckets
  double throughput_alpha = 0.3;        // EWMA weight per completed bucket
  double latency_lo_ms = 0.01;          // log-histogram layout for latency
  double latency_hi_ms = 100000.0;
  std::size_t latency_buckets = 96;
  std::size_t flight_capacity = 8192;   // flight-ring size in events
  std::size_t recent_traces = 16;       // per-flow recent trace ids kept
  std::size_t max_dumps = 8;            // flight dumps captured per trial
};

/// The engine-wired telemetry hub: owns the per-flow SLO monitors, the
/// flight ring and the health stream for one trial (one hub per trial,
/// like TraceRecorder/MetricsRegistry, keeps shard-parallel sweeps
/// race-free). All observation points are O(1) with an MRU flow cache;
/// windows roll lazily when an observation or poll crosses a bucket
/// boundary, so quiet periods cost nothing until the next touch.
class TelemetryHub {
 public:
  explicit TelemetryHub(TelemetryConfig cfg = {});
  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  [[nodiscard]] const TelemetryConfig& config() const { return cfg_; }

  // --- SLO specs ------------------------------------------------------------

  void set_slo(std::uint64_t flow, const SloSpec& spec);
  void clear_slo(std::uint64_t flow);
  [[nodiscard]] const SloSpec* slo(std::uint64_t flow) const;
  /// Enables windowed aggregation for a flow without attaching an SLO —
  /// feedback controllers need measured window stats for every flow they
  /// re-divide resources over, not just the SLO-bearing ones. Idempotent;
  /// implied by set_slo.
  void watch(std::uint64_t flow);

  // --- observation points ---------------------------------------------------
  // Flow 0 (net::kNoFlow) contributes to global counters only. `now` is
  // the engine clock at the observation.

  // The three per-call/per-packet points (on_call, on_delivery, on_drop)
  // are defined inline below the state structs: they sit on the engine hot
  // loop, and the cross-TU call alone is measurable at BM_TelemetryOverhead
  // densities. The rarer points stay out of line.

  /// A completed client invocation: latency from post-marshal send to
  /// reply completion. `trace` (0 = none) registers the id as recently
  /// implicated for flight-recorder dumps.
  void on_call(std::uint64_t flow, TimePoint now, double latency_ms,
               std::uint64_t trace = 0);
  /// A deadline miss (client timeout, establish-time veto or server-side
  /// expiry). Counts as a call for the miss-rate denominator.
  void on_deadline_miss(std::uint64_t flow, TimePoint now, std::uint64_t trace = 0);
  void on_retry(std::uint64_t flow, TimePoint now);
  /// A packet delivered at its destination node.
  void on_delivery(std::uint64_t flow, TimePoint now, std::uint64_t bytes);
  /// A packet dropped anywhere in the network (queue full, RED, no route).
  void on_drop(std::uint64_t flow, TimePoint now, std::uint64_t trace = 0);
  void on_ce_mark(std::uint64_t flow, TimePoint now);
  void on_queue_depth(std::size_t packets);
  void on_jitter(std::uint64_t flow, double jitter_ms);
  void on_reserve_overrun(std::uint64_t reserve_id, TimePoint now);

  // --- driving --------------------------------------------------------------

  /// Rolls every monitored flow's window up to `now` (ascending flow-id
  /// order, so health events from different flows at the same boundary
  /// are deterministically ordered). Call periodically (or not at all:
  /// observations self-roll; poll only bounds staleness of quiet flows).
  void poll(TimePoint now);
  /// poll + closes breached intervals in the summaries at `now`. Call
  /// once at end of trial before reading report().
  void finalize(TimePoint now);

  // --- results --------------------------------------------------------------

  [[nodiscard]] const std::vector<HealthEvent>& events() const { return events_; }
  [[nodiscard]] HealthReport report() const;
  [[nodiscard]] const std::vector<FlightDump>& dumps() const { return dumps_; }
  [[nodiscard]] bool breached(std::uint64_t flow) const;
  /// Control-plane poll surface: rolls the flow to `now` and returns its
  /// current window aggregates (zeros for unmonitored flows).
  [[nodiscard]] WindowStats window(std::uint64_t flow, TimePoint now);

  /// The always-on flight ring. Attach as the engine tracer when full
  /// tracing is off: engine.set_tracer(&hub.flight()).
  [[nodiscard]] TraceRecorder& flight() { return flight_; }
  /// Where breach dumps are cut from; defaults to the internal flight
  /// ring. Point at the full recorder when --trace is enabled.
  void set_dump_source(const TraceRecorder* rec) { dump_source_ = rec; }

  /// Exports lifetime per-flow counters, health totals and hub-global
  /// stats under `prefix` (per-flow names ascending by id).
  void export_metrics(MetricsRegistry& reg, std::string_view prefix) const;

 private:
  struct Bucket {
    std::uint64_t calls = 0;
    std::uint64_t misses = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t drops = 0;
    std::uint64_t bytes = 0;
    Histogram latency;
    explicit Bucket(const Histogram& layout) : latency(layout) {}
  };

  // alignas(64): the leading hot group (everything an inline observation
  // touches — flags, current-bucket cursor, ring pointer, the two hottest
  // counters) is laid out to share one cache line, and the alignment pins
  // that line to a cache-line boundary inside the flows_ vector.
  struct alignas(64) FlowState {
    std::uint64_t id = 0;
    std::int64_t bucket_start_ns = 0;  // start of the bucket being filled
    std::uint32_t cur = 0;             // ring index of that bucket
    bool has_spec = false;
    bool windowed = false;  // ring allocated (flows with a spec)
    // Window ring; aggregates are maintained incrementally over all live
    // buckets (merge on observation, subtract on expiry).
    std::vector<Bucket> ring;
    std::uint64_t total_calls = 0;  // lifetime; hot-line resident
    std::uint64_t w_calls = 0, w_misses = 0, w_deliveries = 0, w_drops = 0,
                  w_bytes = 0;
    std::uint64_t total_deliveries = 0, total_bytes = 0;

    SloSpec spec;
    double ewma_bps = 0.0;
    bool ewma_seeded = false;

    // Hysteresis state.
    std::uint32_t bad_streak = 0;
    std::uint32_t good_streak = 0;
    bool breached = false;
    std::int64_t breach_since_ns = 0;
    FlowHealthSummary summary;

    // Recently implicated trace ids for flight dumps.
    std::vector<std::uint64_t> recent_traces;
    std::size_t recent_pos = 0;

    // Remaining lifetime counters (export_metrics).
    std::uint64_t total_misses = 0, total_retries = 0, total_drops = 0,
                  total_ce_marks = 0;
    RunningStats jitter_ms;
  };

  [[nodiscard]] FlowState& flow_state(std::uint64_t flow);
  void enable_window(FlowState& f, TimePoint now);
  /// Rolls f's ring forward until `now` falls inside the current bucket,
  /// evaluating the SLO at each crossed boundary.
  void roll(FlowState& f, std::int64_t now_ns);
  void evaluate(FlowState& f, std::int64_t t_ns);
  /// Non-const: merges the window's live bucket histograms into the
  /// preallocated scratch for the p99 (the hot observation path never
  /// maintains a window-wide histogram; evaluation instants pay for it,
  /// amortized over a whole bucket of observations).
  [[nodiscard]] WindowStats window_stats(const FlowState& f);
  void note_trace(FlowState& f, std::uint64_t trace);
  void capture_dump(const FlowState& f, std::int64_t t_ns, const char* metric);

  TelemetryConfig cfg_;
  // Hot group: every field an inline observation point reads sits in the
  // two cache lines following cfg_ — the MRU cache, the flow array
  // pointer, the bucket width, and the latency layout bucket_index()
  // consults. Keep declaration order (= memory order) tight here.
  std::int64_t bucket_ns_;
  // MRU cache: the last flow touched, to skip the hash lookup on runs of
  // observations for the same flow (the common case on the hot path).
  std::uint64_t mru_flow_ = 0;
  std::uint32_t mru_slot_ = 0;
  std::vector<FlowState> flows_;
  Histogram latency_layout_;

  std::int64_t window_ns_;
  Histogram window_scratch_;  // merge target for window_stats()
  std::unordered_map<std::uint64_t, std::uint32_t> flow_index_;

  std::vector<HealthEvent> events_;
  std::vector<FlightDump> dumps_;
  TraceRecorder flight_;
  const TraceRecorder* dump_source_;

  // Hub-global accounting.
  RunningStats queue_depth_;
  std::uint64_t reserve_overruns_ = 0;
  std::uint64_t global_drops_ = 0;       // flow 0 / unattributed
  std::uint64_t global_deliveries_ = 0;
  std::uint64_t global_misses_ = 0;
};

// --- inline hot-path observation points -------------------------------------
// One MRU compare, one boundary compare, and (for windowed flows) one
// log-bucket classification — everything else is a plain counter bump.
// Defined here so call sites on the engine loop inline the fast path;
// roll()/flow_state()/note_trace() stay out of line (cold).

inline void TelemetryHub::on_call(std::uint64_t flow, TimePoint now,
                                  double latency_ms, std::uint64_t trace) {
  if (flow == 0) return;
  FlowState& f = flow == mru_flow_ ? flows_[mru_slot_] : flow_state(flow);
  ++f.total_calls;
  if (trace != 0) note_trace(f, trace);
  if (!f.windowed) return;
  if (now.ns() - f.bucket_start_ns >= bucket_ns_) roll(f, now.ns());
  Bucket& b = f.ring[f.cur];
  ++b.calls;
  b.latency.add_at(latency_layout_.bucket_index(latency_ms));
  ++f.w_calls;
}

inline void TelemetryHub::on_delivery(std::uint64_t flow, TimePoint now,
                                      std::uint64_t bytes) {
  if (flow == 0) {
    ++global_deliveries_;
    return;
  }
  FlowState& f = flow == mru_flow_ ? flows_[mru_slot_] : flow_state(flow);
  ++f.total_deliveries;
  f.total_bytes += bytes;
  if (!f.windowed) return;
  if (now.ns() - f.bucket_start_ns >= bucket_ns_) roll(f, now.ns());
  Bucket& b = f.ring[f.cur];
  ++b.deliveries;
  b.bytes += bytes;
  ++f.w_deliveries;
  f.w_bytes += bytes;
}

inline void TelemetryHub::on_drop(std::uint64_t flow, TimePoint now,
                                  std::uint64_t trace) {
  if (flow == 0) {
    ++global_drops_;
    return;
  }
  FlowState& f = flow == mru_flow_ ? flows_[mru_slot_] : flow_state(flow);
  ++f.total_drops;
  if (trace != 0) note_trace(f, trace);
  if (!f.windowed) return;
  if (now.ns() - f.bucket_start_ns >= bucket_ns_) roll(f, now.ns());
  ++f.ring[f.cur].drops;
  ++f.w_drops;
}

/// One trial's health report, labeled for the sidecar file.
struct NamedHealthReport {
  std::string name;
  HealthReport report;
};

/// Writes the per-trial + merged health sidecar:
///   {"trials":[{"name":...,"health":{"events":[...],"flows":{...}}},...],
///    "merged":{"events":N,"flows":{...}}}
/// Deterministic: trials are pre-ordered by index, events are in
/// occurrence order (evaluation instants are bucket boundaries), flow maps
/// are key-sorted, doubles use the %.17g format of the metrics sidecar.
void write_health_sidecar(std::ostream& os, const std::vector<NamedHealthReport>& trials);
bool write_health_sidecar_file(const std::string& path,
                               const std::vector<NamedHealthReport>& trials);

/// One trial's flight dumps, labeled for the sidecar file.
struct NamedFlightDumps {
  std::string name;
  std::vector<FlightDump> dumps;
};

/// Writes the flight-recorder dump sidecar: {"dumps":[{...},...]} with one
/// entry per breach dump across all trials, in trial order.
void write_flight_sidecar(std::ostream& os, const std::vector<NamedFlightDumps>& trials);
bool write_flight_sidecar_file(const std::string& path,
                               const std::vector<NamedFlightDumps>& trials);

}  // namespace aqm::obs

#include "obs/trace.hpp"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace aqm::obs {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::Engine: return "engine";
    case TraceCategory::Net: return "net";
    case TraceCategory::Orb: return "orb";
    case TraceCategory::Os: return "os";
    case TraceCategory::Quo: return "quo";
    case TraceCategory::App: return "app";
    case TraceCategory::Pipeline: return "pipeline";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::uint32_t categories) : categories_(categories) {}

std::uint16_t TraceRecorder::track(std::string_view name) {
  const auto it = track_index_.find(name);
  if (it != track_index_.end()) return it->second;
  assert(track_names_.size() < 0xffff && "track id space exhausted");
  const auto idx = static_cast<std::uint16_t>(track_names_.size());
  track_names_.emplace_back(name);
  track_index_.emplace(std::string(name), idx);
  return idx;
}

const char* TraceRecorder::intern(std::string_view s) {
  const auto it = intern_index_.find(s);
  if (it != intern_index_.end()) return it->second;
  interned_.push_back(std::make_unique<std::string>(s));
  const char* p = interned_.back()->c_str();
  intern_index_.emplace(std::string(s), p);
  return p;
}

void TraceRecorder::push(TraceCategory cat, TracePhase phase, const char* name,
                         std::uint16_t track, std::int64_t ts_ns, std::int64_t dur_ns,
                         std::uint64_t id, std::initializer_list<TraceArg> args) {
  if (!wants(cat)) return;
  if (chunks_.empty() || chunks_[active_]->n == kChunkEvents) {
    if (!chunks_.empty() && active_ + 1 < chunks_.size() &&
        chunks_[active_ + 1]->n == 0) {
      ++active_;  // recycled chunk from a previous clear()
    } else if (ring_chunks_ != 0 && chunks_.size() >= ring_chunks_) {
      // Flight-recorder ring: reclaim the oldest chunk wholesale.
      active_ = (active_ + 1) % chunks_.size();
      Chunk& victim = *chunks_[active_];
      overwritten_ += victim.n;
      total_ -= victim.n;
      victim.n = 0;
    } else {
      chunks_.push_back(std::make_unique<Chunk>());
      active_ = chunks_.size() - 1;
    }
  }
  Chunk& c = *chunks_[active_];
  TraceEvent& e = c.ev[c.n++];
  ++total_;
  e.name = name;
  e.phase = phase;
  e.track = track;
  e.cat = cat;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.id = id;
  e.argc = 0;
  for (const TraceArg& a : args) {
    if (e.argc == e.args.size()) break;
    e.args[e.argc++] = a;
  }
}

void TraceRecorder::clear() {
  for (auto& chunk : chunks_) chunk->n = 0;
  active_ = 0;
  total_ = 0;
  current_ = 0;
  overwritten_ = 0;
}

namespace {

/// JSON-escapes into `out` (names/labels are ASCII identifiers in
/// practice, but stay safe on arbitrary input).
void escape(std::string& out, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

const char* phase_code(TracePhase p) {
  switch (p) {
    case TracePhase::Complete: return "X";
    case TracePhase::Instant: return "i";
    case TracePhase::AsyncBegin: return "b";
    case TracePhase::AsyncEnd: return "e";
    case TracePhase::Counter: return "C";
  }
  return "i";
}

/// Chrome timestamps are microseconds; emit with nanosecond precision.
void append_us(std::string& out, std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  std::string line;
  line.reserve(256);
  os << "{\"traceEvents\":[\n";
  os << R"({"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"aqm-sim"}})";
  for (std::size_t t = 0; t < track_names_.size(); ++t) {
    line.clear();
    line += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    line += std::to_string(t);
    line += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    escape(line, track_names_[t]);
    line += "\"}}";
    os << line;
  }
  for_each([&](const TraceEvent& e) {
    line.clear();
    line += ",\n{\"ph\":\"";
    line += phase_code(e.phase);
    line += "\",\"pid\":1,\"tid\":";
    line += std::to_string(e.track);
    line += ",\"ts\":";
    append_us(line, e.ts_ns);
    if (e.phase == TracePhase::Complete) {
      line += ",\"dur\":";
      append_us(line, e.dur_ns);
    }
    line += ",\"cat\":\"";
    line += to_string(e.cat);
    line += "\",\"name\":\"";
    escape(line, e.name != nullptr ? e.name : "?");
    line += "\"";
    if (e.phase == TracePhase::Instant) line += ",\"s\":\"t\"";
    if (e.id != 0 || e.phase == TracePhase::AsyncBegin || e.phase == TracePhase::AsyncEnd) {
      line += ",\"id\":\"";
      line += std::to_string(e.id);
      line += "\"";
    }
    if (e.argc > 0) {
      line += ",\"args\":{";
      for (std::uint8_t i = 0; i < e.argc; ++i) {
        if (i > 0) line += ",";
        line += "\"";
        escape(line, e.args[i].key);
        line += "\":";
        append_double(line, e.args[i].value);
      }
      line += "}";
    }
    line += "}";
    os << line;
  });
  os << "\n]}\n";
}

bool TraceRecorder::write_chrome_json_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_chrome_json(os);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace aqm::obs

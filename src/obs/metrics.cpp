#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace aqm::obs {
namespace {

void escape(std::string& out, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

/// Fixed double format: shortest-exact would vary by libc; %.17g is exact
/// for any double and stable everywhere.
void append_double(std::string& out, double v) {
  // JSON has no inf/nan literals; emit null (never expected, but a
  // malformed sidecar must not break the CI validator).
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_key(std::string& out, std::string_view key) {
  out += "\"";
  escape(out, key);
  out += "\":";
}

std::string pad(int indent) { return std::string(static_cast<std::size_t>(indent), ' '); }

void write_stats_object(std::string& line, const RunningStats& s) {
  line += "{";
  append_key(line, "count");
  line += std::to_string(s.count());
  line += ",";
  append_key(line, "mean");
  append_double(line, s.mean());
  line += ",";
  append_key(line, "min");
  append_double(line, s.empty() ? 0.0 : s.min());
  line += ",";
  append_key(line, "max");
  append_double(line, s.empty() ? 0.0 : s.max());
  line += ",";
  append_key(line, "sum");
  append_double(line, s.sum());
  line += "}";
}

}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, s] : other.gauges) gauges[name].merge(s);
  for (const auto& [name, s] : other.stats) stats[name].merge(s);
  for (const auto& [name, h] : other.histograms) {
    const auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, h);
    } else if (!it->second.merge(h)) {
      ++merge_conflicts;
    }
  }
  merge_conflicts += other.merge_conflicts;
}

void MetricsSnapshot::write_json(std::ostream& os, int indent) const {
  const std::string p0 = pad(indent);
  const std::string p1 = pad(indent + 2);
  std::string line;
  os << "{\n";

  os << p1 << "\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    line.clear();
    line += first ? "\n" : ",\n";
    line += p1 + "  ";
    append_key(line, name);
    line += " ";
    line += std::to_string(v);
    os << line;
    first = false;
  }
  os << (first ? "" : "\n" + p1) << "},\n";

  os << p1 << "\"gauges\": {";
  first = true;
  for (const auto& [name, s] : gauges) {
    line.clear();
    line += first ? "\n" : ",\n";
    line += p1 + "  ";
    append_key(line, name);
    line += " ";
    write_stats_object(line, s);
    os << line;
    first = false;
  }
  os << (first ? "" : "\n" + p1) << "},\n";

  os << p1 << "\"stats\": {";
  first = true;
  for (const auto& [name, s] : stats) {
    line.clear();
    line += first ? "\n" : ",\n";
    line += p1 + "  ";
    append_key(line, name);
    line += " ";
    write_stats_object(line, s);
    os << line;
    first = false;
  }
  os << (first ? "" : "\n" + p1) << "},\n";

  os << p1 << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    line.clear();
    line += first ? "\n" : ",\n";
    line += p1 + "  ";
    append_key(line, name);
    line += " {";
    append_key(line, "count");
    line += std::to_string(h.count());
    line += ",";
    append_key(line, "lo");
    append_double(line, h.bucket_lo(0));
    line += ",";
    append_key(line, "hi");
    append_double(line, h.bucket_hi(h.bucket_count() - 1));
    line += ",";
    append_key(line, "p50");
    append_double(line, h.quantile(0.5));
    line += ",";
    append_key(line, "p90");
    append_double(line, h.quantile(0.9));
    line += ",";
    append_key(line, "p99");
    append_double(line, h.quantile(0.99));
    line += ",";
    append_key(line, "buckets");
    line += " [";
    for (std::size_t i = 0; i < h.bucket_count(); ++i) {
      if (i > 0) line += ",";
      line += std::to_string(h.bucket(i));
    }
    line += "]}";
    os << line;
    first = false;
  }
  os << (first ? "" : "\n" + p1) << "}\n";

  os << p0 << "}";
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

RunningStats& MetricsRegistry::stats(std::string_view name) {
  const auto it = stats_.find(name);
  if (it != stats_.end()) return it->second;
  return stats_.emplace(std::string(name), RunningStats{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                      std::size_t buckets) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram(lo, hi, buckets)).first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c.value());
  for (const auto& [name, g] : gauges_) {
    RunningStats s;
    if (g.is_set()) s.add(g.value());
    snap.gauges.emplace(name, s);
  }
  for (const auto& [name, s] : stats_) snap.stats.emplace(name, s);
  for (const auto& [name, h] : histograms_) snap.histograms.emplace(name, h);
  return snap;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  stats_.clear();
  histograms_.clear();
}

void write_metrics_sidecar(std::ostream& os, const std::vector<NamedSnapshot>& trials) {
  os << "{\n  \"trials\": [";
  MetricsSnapshot merged;
  bool first = true;
  for (const auto& t : trials) {
    std::string head;
    head += first ? "\n" : ",\n";
    head += "    {\"name\": \"";
    escape(head, t.name);
    head += "\", \"metrics\": ";
    os << head;
    t.snapshot.write_json(os, 4);
    os << "}";
    merged.merge(t.snapshot);
    first = false;
  }
  os << (first ? "" : "\n  ") << "],\n  \"merged\": ";
  merged.write_json(os, 2);
  os << "\n}\n";
}

bool write_metrics_sidecar_file(const std::string& path,
                                const std::vector<NamedSnapshot>& trials) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_metrics_sidecar(os, trials);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace aqm::obs

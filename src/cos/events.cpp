#include "cos/events.hpp"

#include <cassert>

#include "orb/cdr.hpp"
#include "orb/ior.hpp"
#include "orb/servant.hpp"

namespace aqm::cos {

std::vector<std::uint8_t> encode_event(const Event& event) {
  orb::CdrWriter w;
  w.write_string(event.topic);
  w.write_i32(event.priority);
  w.write_i64(event.published_at.ns());
  w.write_octets(event.payload);
  return w.take();
}

Event decode_event(const std::vector<std::uint8_t>& body) {
  orb::CdrReader r(body);
  Event event;
  event.topic = r.read_string();
  event.priority = r.read_i32();
  event.published_at = TimePoint{r.read_i64()};
  event.payload = r.read_octets();
  return event;
}

EventChannel::EventChannel(orb::OrbEndpoint& orb, orb::Poa& poa) : orb_(orb) {
  auto servant = std::make_shared<orb::FunctionServant>(
      microseconds(30), [this](orb::ServerRequest& req) { handle(req); });
  ref_ = poa.activate_object(kEventChannelObjectId, std::move(servant));
}

void EventChannel::handle(orb::ServerRequest& req) {
  if (req.operation == kPushOp) {
    publish(decode_event(req.body));
    return;
  }
  orb::CdrReader r(req.body);
  orb::CdrWriter w;
  if (req.operation == kSubscribeOp) {
    const std::string prefix = r.read_string();
    subscribe(prefix, orb::string_to_object(r.read_string()));
    w.write_bool(true);
  } else if (req.operation == kUnsubscribeOp) {
    const std::string prefix = r.read_string();
    unsubscribe(prefix, orb::string_to_object(r.read_string()));
    w.write_bool(true);
  } else {
    throw orb::BadParam("unknown event-channel operation: " + req.operation);
  }
  req.reply_body = w.take();
}

void EventChannel::subscribe(const std::string& topic_prefix,
                             const orb::ObjectRef& consumer) {
  assert(consumer.valid());
  // Replace an identical subscription instead of duplicating it.
  unsubscribe(topic_prefix, consumer);
  subscriptions_.push_back(Subscription{topic_prefix, consumer});
}

void EventChannel::unsubscribe(const std::string& topic_prefix,
                               const orb::ObjectRef& consumer) {
  std::erase_if(subscriptions_, [&](const Subscription& s) {
    return s.prefix == topic_prefix && s.consumer.node == consumer.node &&
           s.consumer.object_key == consumer.object_key;
  });
}

void EventChannel::publish(const Event& event) {
  ++published_;
  const auto body = encode_event(event);
  for (const auto& s : subscriptions_) {
    if (event.topic.compare(0, s.prefix.size(), s.prefix) != 0) continue;
    ++deliveries_;
    orb::InvokeOptions opts;
    opts.oneway = true;
    opts.priority = event.priority;  // priority-preserving fan-out
    orb_.invoke(s.consumer, kPushEventOp, body, opts);
  }
}

EventSupplier::EventSupplier(orb::OrbEndpoint& orb, orb::ObjectRef channel)
    : orb_(orb), stub_(orb, std::move(channel)) {}

void EventSupplier::push(const std::string& topic, orb::CorbaPriority priority,
                         std::vector<std::uint8_t> payload) {
  Event event;
  event.topic = topic;
  event.priority = priority;
  event.payload = std::move(payload);
  event.published_at = orb_.engine().now();
  ++pushed_;
  // The push to the channel itself also travels at the event's priority.
  orb::InvokeOptions opts;
  opts.oneway = true;
  opts.priority = priority;
  orb_.invoke(stub_.ref(), kPushOp, encode_event(event), opts);
}

EventConsumer::EventConsumer(orb::Poa& poa, const std::string& object_id, Duration cost,
                             Handler handler) {
  assert(handler);
  auto servant = std::make_shared<orb::FunctionServant>(
      cost, [this, handler = std::move(handler)](orb::ServerRequest& req) {
        if (req.operation != kPushEventOp) return;
        ++received_;
        handler(decode_event(req.body));
      });
  ref_ = poa.activate_object(object_id, std::move(servant));
}

void EventConsumer::subscribe(orb::OrbEndpoint& orb, const orb::ObjectRef& channel,
                              const std::string& topic_prefix,
                              std::function<void(bool)> ack) {
  orb::CdrWriter w;
  w.write_string(topic_prefix);
  w.write_string(orb::object_to_string(ref_));
  orb::ObjectStub stub(orb, channel);
  stub.twoway(kSubscribeOp, w.take(),
              [ack = std::move(ack)](orb::CompletionStatus status,
                                     std::vector<std::uint8_t>) {
                if (ack) ack(status == orb::CompletionStatus::Ok);
              });
}

}  // namespace aqm::cos

#include "cos/naming.hpp"

#include <cassert>

#include "orb/cdr.hpp"
#include "orb/ior.hpp"
#include "orb/servant.hpp"

namespace aqm::cos {
namespace {

bool valid_name(const std::string& name) {
  if (name.empty() || name.front() == '/' || name.back() == '/') return false;
  return name.find("//") == std::string::npos;
}

}  // namespace

NamingServiceServer::NamingServiceServer(orb::Poa& poa) {
  auto servant = std::make_shared<orb::FunctionServant>(
      microseconds(40), [this](orb::ServerRequest& req) {
        orb::CdrReader r(req.body);
        orb::CdrWriter w;
        if (req.operation == kBindOp) {
          const std::string name = r.read_string();
          const std::string ior = r.read_string();
          const auto status = bind(name, orb::string_to_object(ior));
          w.write_bool(status.ok());
        } else if (req.operation == kResolveOp) {
          const std::string name = r.read_string();
          const auto found = resolve(name);
          w.write_bool(found.has_value());
          if (found) w.write_string(orb::object_to_string(*found));
        } else if (req.operation == kUnbindOp) {
          w.write_bool(unbind(r.read_string()));
        } else if (req.operation == kListOp) {
          const auto names = list(r.read_string());
          w.write_u32(static_cast<std::uint32_t>(names.size()));
          for (const auto& n : names) w.write_string(n);
        } else {
          throw orb::BadParam("unknown naming operation: " + req.operation);
        }
        req.reply_body = w.take();
      });
  ref_ = poa.activate_object(kNamingObjectId, std::move(servant));
}

Status<std::string> NamingServiceServer::bind(const std::string& name,
                                              const orb::ObjectRef& obj, bool rebind) {
  if (!valid_name(name)) return Status<std::string>::err("malformed name: " + name);
  if (!obj.valid()) return Status<std::string>::err("cannot bind an invalid reference");
  if (!rebind && bindings_.count(name) > 0) {
    return Status<std::string>::err("already bound: " + name);
  }
  bindings_[name] = orb::object_to_string(obj);
  return {};
}

std::optional<orb::ObjectRef> NamingServiceServer::resolve(const std::string& name) const {
  const auto it = bindings_.find(name);
  if (it == bindings_.end()) return std::nullopt;
  return orb::string_to_object(it->second);
}

bool NamingServiceServer::unbind(const std::string& name) {
  return bindings_.erase(name) > 0;
}

std::vector<std::string> NamingServiceServer::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [name, ior] : bindings_) {
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  }
  return out;
}

NamingClient::NamingClient(orb::OrbEndpoint& orb, orb::ObjectRef naming_ref)
    : stub_(orb, std::move(naming_ref)) {}

void NamingClient::bind(const std::string& name, const orb::ObjectRef& obj,
                        AckCallback cb) {
  orb::CdrWriter w;
  w.write_string(name);
  w.write_string(orb::object_to_string(obj));
  stub_.twoway(kBindOp, w.take(),
               [cb = std::move(cb)](orb::CompletionStatus status,
                                    std::vector<std::uint8_t> body) {
                 if (!cb) return;
                 if (status != orb::CompletionStatus::Ok) {
                   cb(false);
                   return;
                 }
                 orb::CdrReader r(body);
                 cb(r.read_bool());
               });
}

void NamingClient::resolve(const std::string& name, ResolveCallback cb) {
  assert(cb);
  orb::CdrWriter w;
  w.write_string(name);
  stub_.twoway(kResolveOp, w.take(),
               [cb = std::move(cb)](orb::CompletionStatus status,
                                    std::vector<std::uint8_t> body) {
                 if (status != orb::CompletionStatus::Ok) {
                   cb(Result<orb::ObjectRef>::err(std::string("rpc failed: ") +
                                                  orb::to_string(status)));
                   return;
                 }
                 try {
                   orb::CdrReader r(body);
                   if (!r.read_bool()) {
                     cb(Result<orb::ObjectRef>::err("name not bound"));
                     return;
                   }
                   cb(orb::string_to_object(r.read_string()));
                 } catch (const orb::SystemException& e) {
                   cb(Result<orb::ObjectRef>::err(e.what()));
                 }
               });
}

void NamingClient::unbind(const std::string& name, AckCallback cb) {
  orb::CdrWriter w;
  w.write_string(name);
  stub_.twoway(kUnbindOp, w.take(),
               [cb = std::move(cb)](orb::CompletionStatus status,
                                    std::vector<std::uint8_t> body) {
                 if (!cb) return;
                 if (status != orb::CompletionStatus::Ok) {
                   cb(false);
                   return;
                 }
                 orb::CdrReader r(body);
                 cb(r.read_bool());
               });
}

}  // namespace aqm::cos

// CORBA Naming Service (CosNaming, simplified).
//
// The paper's Figure 1 lists "Name Services" among the common middleware
// services. This is the standard bootstrap mechanism: servers bind
// stringified object references under hierarchical names; clients resolve
// names to references instead of exchanging IORs out of band.
//
// Names are slash-separated paths ("sensors/uav1/video"); contexts are
// implicit (created on bind, like `mkdir -p`).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "orb/orb.hpp"

namespace aqm::cos {

inline constexpr const char* kNamingObjectId = "naming";
inline constexpr const char* kBindOp = "bind";
inline constexpr const char* kResolveOp = "resolve";
inline constexpr const char* kUnbindOp = "unbind";
inline constexpr const char* kListOp = "list";

/// Server side: activates the naming servant in a POA. State is in-process;
/// remote access goes through the ORB like any other servant.
class NamingServiceServer {
 public:
  explicit NamingServiceServer(orb::Poa& poa);

  [[nodiscard]] const orb::ObjectRef& ref() const { return ref_; }

  // Local (in-process) access, also used by the servant.
  Status<std::string> bind(const std::string& name, const orb::ObjectRef& obj,
                           bool rebind = true);
  [[nodiscard]] std::optional<orb::ObjectRef> resolve(const std::string& name) const;
  bool unbind(const std::string& name);
  /// All bound names with the given prefix (lexicographic order).
  [[nodiscard]] std::vector<std::string> list(const std::string& prefix = "") const;
  [[nodiscard]] std::size_t size() const { return bindings_.size(); }

 private:
  orb::ObjectRef ref_;
  std::map<std::string, std::string> bindings_;  // name -> stringified IOR
};

/// Remote client: asynchronous bind/resolve against a naming servant.
class NamingClient {
 public:
  using ResolveCallback = std::function<void(Result<orb::ObjectRef>)>;
  using AckCallback = std::function<void(bool ok)>;

  NamingClient(orb::OrbEndpoint& orb, orb::ObjectRef naming_ref);

  void bind(const std::string& name, const orb::ObjectRef& obj, AckCallback cb = nullptr);
  void resolve(const std::string& name, ResolveCallback cb);
  void unbind(const std::string& name, AckCallback cb = nullptr);

 private:
  orb::ObjectStub stub_;
};

}  // namespace aqm::cos

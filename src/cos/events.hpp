// Real-time event service (push model), after TAO's RT Event Channel.
//
// The paper's middleware stack (Figure 1) lists "Event Services" and its
// prior-work list includes "scalable event processing". This channel
// decouples suppliers from consumers: suppliers push typed events at a
// CORBA priority; the channel fans each event out to every consumer whose
// topic subscription matches, forwarding with the *event's* priority so
// the RT machinery (thread priorities, DSCP marking) applies to event
// delivery exactly as it does to direct calls.
//
// Topics are slash-separated strings; subscriptions match by prefix
// ("sensors/" receives "sensors/uav1/frame").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "orb/orb.hpp"

namespace aqm::cos {

inline constexpr const char* kEventChannelObjectId = "event_channel";
inline constexpr const char* kPushOp = "push";
inline constexpr const char* kSubscribeOp = "subscribe";
inline constexpr const char* kUnsubscribeOp = "unsubscribe";
inline constexpr const char* kPushEventOp = "push_event";

struct Event {
  std::string topic;
  orb::CorbaPriority priority = 0;
  std::vector<std::uint8_t> payload;
  TimePoint published_at{};
};

[[nodiscard]] std::vector<std::uint8_t> encode_event(const Event& event);
/// Throws orb::MarshalError on malformed input.
[[nodiscard]] Event decode_event(const std::vector<std::uint8_t>& body);

/// The channel: activates its servant in `poa`; uses `orb` to forward
/// events to consumers (oneway, at the event's priority).
class EventChannel {
 public:
  EventChannel(orb::OrbEndpoint& orb, orb::Poa& poa);

  [[nodiscard]] const orb::ObjectRef& ref() const { return ref_; }

  /// Local subscription management (remote consumers use kSubscribeOp).
  void subscribe(const std::string& topic_prefix, const orb::ObjectRef& consumer);
  void unsubscribe(const std::string& topic_prefix, const orb::ObjectRef& consumer);

  /// Local publish (suppliers in other processes use kPushOp).
  void publish(const Event& event);

  [[nodiscard]] std::size_t consumer_count() const { return subscriptions_.size(); }
  [[nodiscard]] std::uint64_t events_published() const { return published_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }

 private:
  struct Subscription {
    std::string prefix;
    orb::ObjectRef consumer;
  };

  void handle(orb::ServerRequest& req);

  orb::OrbEndpoint& orb_;
  orb::ObjectRef ref_;
  std::vector<Subscription> subscriptions_;
  std::uint64_t published_ = 0;
  std::uint64_t deliveries_ = 0;
};

/// Supplier helper: pushes events into a (possibly remote) channel.
class EventSupplier {
 public:
  EventSupplier(orb::OrbEndpoint& orb, orb::ObjectRef channel);

  void push(const std::string& topic, orb::CorbaPriority priority,
            std::vector<std::uint8_t> payload = {});

  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }

 private:
  orb::OrbEndpoint& orb_;
  orb::ObjectStub stub_;
  std::uint64_t pushed_ = 0;
};

/// Consumer helper: activates a consumer servant and subscribes it to a
/// channel over the ORB.
class EventConsumer {
 public:
  using Handler = std::function<void(const Event&)>;

  /// `cost` is the per-event processing cost on the consuming host.
  EventConsumer(orb::Poa& poa, const std::string& object_id, Duration cost,
                Handler handler);

  /// Subscribes via the channel's remote interface; `ack` reports success.
  void subscribe(orb::OrbEndpoint& orb, const orb::ObjectRef& channel,
                 const std::string& topic_prefix,
                 std::function<void(bool)> ack = nullptr);

  [[nodiscard]] const orb::ObjectRef& ref() const { return ref_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }

 private:
  orb::ObjectRef ref_;
  std::uint64_t received_ = 0;
};

}  // namespace aqm::cos

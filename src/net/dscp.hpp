// DiffServ Codepoints (RFC 2474 / 2597 / 3246) and the per-hop-behavior
// service classes our DiffServ queue implements.
#pragma once

#include <cstdint>

namespace aqm::net {

/// 6-bit DiffServ codepoint carried in each packet's IP header field.
using Dscp = std::uint8_t;

namespace dscp {
inline constexpr Dscp kBestEffort = 0;
// Assured Forwarding classes (low drop-precedence members).
inline constexpr Dscp kAf11 = 10;
inline constexpr Dscp kAf21 = 18;
inline constexpr Dscp kAf31 = 26;
inline constexpr Dscp kAf41 = 34;
// Expedited Forwarding (RFC 3246): the highest data-plane class.
inline constexpr Dscp kEf = 46;
// Class Selector 6: network control (RSVP signaling and the like).
inline constexpr Dscp kCs6 = 48;
}  // namespace dscp

/// Service class a DiffServ-enabled router maps a codepoint to.
/// Lower numeric value = served first (strict priority).
enum class PhbClass : std::uint8_t {
  NetworkControl = 0,
  Ef = 1,
  Af4 = 2,
  Af3 = 3,
  Af2 = 4,
  Af1 = 5,
  BestEffort = 6,
};

inline constexpr std::uint8_t kPhbClassCount = 7;

/// Default codepoint -> class mapping (CS6 -> control, EF -> EF, AFxy by
/// class number, everything else best effort).
[[nodiscard]] constexpr PhbClass classify(Dscp dscp) {
  if (dscp >= dscp::kCs6) return PhbClass::NetworkControl;
  if (dscp == dscp::kEf) return PhbClass::Ef;
  if (dscp >= 34 && dscp <= 38) return PhbClass::Af4;
  if (dscp >= 26 && dscp <= 30) return PhbClass::Af3;
  if (dscp >= 18 && dscp <= 22) return PhbClass::Af2;
  if (dscp >= 10 && dscp <= 14) return PhbClass::Af1;
  return PhbClass::BestEffort;
}

}  // namespace aqm::net

#include "net/token_bucket.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aqm::net {

TokenBucket::TokenBucket(double rate_bps, std::uint32_t depth_bytes, TimePoint start)
    : rate_bps_(rate_bps),
      depth_bytes_(depth_bytes),
      tokens_(static_cast<double>(depth_bytes)),
      last_refill_(start) {
  assert(rate_bps > 0.0);
  assert(depth_bytes > 0);
}

void TokenBucket::reconfigure(double rate_bps, std::uint32_t depth_bytes, TimePoint now) {
  assert(rate_bps > 0.0);
  assert(depth_bytes > 0);
  refill(now);  // settle accrual at the old rate first
  rate_bps_ = rate_bps;
  depth_bytes_ = depth_bytes;
  tokens_ = std::min(tokens_, static_cast<double>(depth_bytes));
}

void TokenBucket::refill(TimePoint now) {
  if (now <= last_refill_) return;
  const double elapsed_s = (now - last_refill_).seconds();
  tokens_ = std::min(static_cast<double>(depth_bytes_), tokens_ + rate_bps_ / 8.0 * elapsed_s);
  last_refill_ = now;
}

double TokenBucket::available(TimePoint now) const {
  const double elapsed_s = now > last_refill_ ? (now - last_refill_).seconds() : 0.0;
  return std::min(static_cast<double>(depth_bytes_), tokens_ + rate_bps_ / 8.0 * elapsed_s);
}

bool TokenBucket::conforms(std::uint32_t bytes, TimePoint now) const {
  return available(now) >= static_cast<double>(bytes);
}

bool TokenBucket::consume(std::uint32_t bytes, TimePoint now) {
  refill(now);
  if (tokens_ < static_cast<double>(bytes)) return false;
  tokens_ -= static_cast<double>(bytes);
  return true;
}

Duration TokenBucket::time_until_conforms(std::uint32_t bytes, TimePoint now) const {
  if (bytes > depth_bytes_) return Duration::max();
  const double have = available(now);
  const double need = static_cast<double>(bytes) - have;
  if (need <= 0.0) return Duration::zero();
  const double wait_s = need * 8.0 / rate_bps_;
  return Duration{static_cast<std::int64_t>(std::ceil(wait_s * 1e9))};
}

bool hierarchical_consume(TokenBucket& parent, TokenBucket& child, std::uint32_t bytes,
                          TimePoint now) {
  if (!child.conforms(bytes, now) || !parent.conforms(bytes, now)) return false;
  const bool child_ok = child.consume(bytes, now);
  const bool parent_ok = parent.consume(bytes, now);
  assert(child_ok && parent_ok);
  (void)child_ok;
  (void)parent_ok;
  return true;
}

Duration hierarchical_time_until_conforms(const TokenBucket& parent,
                                          const TokenBucket& child, std::uint32_t bytes,
                                          TimePoint now) {
  const Duration child_wait = child.time_until_conforms(bytes, now);
  const Duration parent_wait = parent.time_until_conforms(bytes, now);
  return std::max(child_wait, parent_wait);
}

}  // namespace aqm::net

// Egress queue disciplines for router/host ports.
//
// Three disciplines cover the paper's network mechanisms:
//  * DropTailQueue   — plain best-effort FIFO (the "before" picture).
//  * DiffServQueue   — strict-priority per-hop behaviour over PHB classes
//                      derived from each packet's DSCP (Section 3.2).
//  * IntServQueue    — RSVP-installed per-flow token-bucket guaranteed
//                      service ahead of best-effort traffic (Section 3.4).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "net/dscp.hpp"
#include "net/packet.hpp"
#include "net/token_bucket.hpp"
#include "obs/trace.hpp"

namespace aqm::obs {
class TelemetryHub;
}

namespace aqm::net {

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t enqueued_bytes = 0;
};

/// Interface all disciplines implement. Time is passed explicitly so the
/// discipline has no dependency on the simulation engine.
class Queue {
 public:
  virtual ~Queue() = default;

  /// Accepts or drops the packet. Returns the packet back when it was
  /// dropped (so the caller can report it); nullopt when accepted.
  virtual std::optional<Packet> enqueue(Packet p, TimePoint now) = 0;

  /// Next packet eligible for transmission, if any.
  virtual std::optional<Packet> dequeue(TimePoint now) = 0;

  /// When packets are queued but none is currently eligible (e.g. a reserved
  /// flow waiting for tokens), returns the delay after which dequeue() should
  /// be retried. nullopt = nothing queued at all.
  [[nodiscard]] virtual std::optional<Duration> next_ready_delay(TimePoint now) const = 0;

  [[nodiscard]] virtual std::size_t packets() const = 0;
  [[nodiscard]] virtual std::size_t bytes() const = 0;
  [[nodiscard]] bool empty() const { return packets() == 0; }

  [[nodiscard]] const QueueStats& stats() const { return stats_; }

  /// Observability wiring (done by the owning Link): lets disciplines with
  /// internal decisions (RED marks/early drops, IntServ policing) record
  /// instants on the link's trace lane. The discipline itself stays free of
  /// any engine dependency — it only ever sees the recorder pointer.
  void set_tracer(obs::TraceRecorder* tracer, std::uint16_t track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

  /// Streaming-telemetry wiring, bound lazily by the owning Link the same
  /// way as the tracer; disciplines report CE marks / policing decisions
  /// without any engine dependency.
  void set_telemetry(obs::TelemetryHub* hub) { telemetry_ = hub; }

 protected:
  /// Non-null iff a recorder is attached and wants net events.
  [[nodiscard]] obs::TraceRecorder* tracer() const {
    return tracer_ != nullptr && tracer_->wants(obs::TraceCategory::Net) ? tracer_
                                                                         : nullptr;
  }
  [[nodiscard]] std::uint16_t trace_track() const { return trace_track_; }
  [[nodiscard]] obs::TelemetryHub* telemetry() const { return telemetry_; }

  void count_enqueue(const Packet& p) {
    ++stats_.enqueued;
    stats_.enqueued_bytes += p.size_bytes;
  }
  void count_drop(const Packet& p) {
    ++stats_.dropped;
    stats_.dropped_bytes += p.size_bytes;
  }
  void count_dequeue() { ++stats_.dequeued; }

 private:
  QueueStats stats_;
  obs::TraceRecorder* tracer_ = nullptr;
  obs::TelemetryHub* telemetry_ = nullptr;
  std::uint16_t trace_track_ = 0;
};

/// Plain FIFO with a packet-count capacity.
class DropTailQueue final : public Queue {
 public:
  explicit DropTailQueue(std::size_t capacity_packets);

  std::optional<Packet> enqueue(Packet p, TimePoint now) override;
  std::optional<Packet> dequeue(TimePoint now) override;
  [[nodiscard]] std::optional<Duration> next_ready_delay(TimePoint now) const override;
  [[nodiscard]] std::size_t packets() const override { return q_.size(); }
  [[nodiscard]] std::size_t bytes() const override { return bytes_; }

 private:
  std::size_t capacity_;
  std::deque<Packet> q_;
  std::size_t bytes_ = 0;
};

/// Strict-priority DiffServ PHB: one drop-tail sub-queue per PHB class,
/// always serving the highest non-empty class.
class DiffServQueue final : public Queue {
 public:
  /// `class_capacity` is the per-class packet capacity.
  explicit DiffServQueue(std::size_t class_capacity);

  /// Per-class capacities, indexed by PhbClass.
  explicit DiffServQueue(const std::array<std::size_t, kPhbClassCount>& capacities);

  std::optional<Packet> enqueue(Packet p, TimePoint now) override;
  std::optional<Packet> dequeue(TimePoint now) override;
  [[nodiscard]] std::optional<Duration> next_ready_delay(TimePoint now) const override;
  [[nodiscard]] std::size_t packets() const override { return packets_; }
  [[nodiscard]] std::size_t bytes() const override { return bytes_; }

  [[nodiscard]] std::size_t class_packets(PhbClass c) const {
    return classes_[static_cast<std::size_t>(c)].size();
  }

 private:
  std::array<std::deque<Packet>, kPhbClassCount> classes_;
  std::array<std::size_t, kPhbClassCount> capacities_;
  std::size_t bytes_ = 0;
  std::size_t packets_ = 0;  // total across classes; packets() is on the hot path
  /// Bit c set iff classes_[c] is non-empty; dequeue picks the lowest set
  /// bit (== highest-priority occupied class) instead of scanning, so the
  /// serve decision is O(1) no matter how the occupied classes spread.
  std::uint32_t occupied_classes_ = 0;
};

/// IntServ guaranteed service. Flows with an installed reservation get a
/// per-flow FIFO policed by a token bucket; conforming reserved packets are
/// served strictly ahead of best effort. Two policing disciplines for a
/// reserved flow's excess traffic:
///  * demote (default): non-conforming packets drop into the best-effort
///    queue, so an over-rate flow still uses spare capacity (RFC 2211
///    controlled-load style policing);
///  * shape: non-conforming packets wait in the flow queue for tokens and
///    are tail-dropped when it fills.
/// Control-plane (CS6) packets bypass into a dedicated high-priority
/// sub-queue so signaling survives congestion.
///
/// Per-flow state is flat SoA (DESIGN.md §10): a hashed FlowId -> dense-slot
/// index over struct-of-arrays fields (token bucket, FIFO head/tail into a
/// shared packet-node pool, queue length), with two explicit ordered
/// FlowId indexes — all reserved flows (admission re-sums) and the ready
/// flows holding packets (service scans) — so enqueue is O(1)+O(log n) and
/// dequeue serves the lowest ready FlowId without touching the other
/// n-1 flows. The original std::map storage is kept verbatim behind
/// Config::legacy_flow_map as a differential oracle (the CpuConfig::
/// legacy_scan pattern); both modes are observably byte-identical.
class IntServQueue final : public Queue {
 public:
  struct Config {
    std::size_t best_effort_capacity = 1000;  // packets
    std::size_t flow_capacity = 100;          // packets per reserved flow
    std::size_t control_capacity = 100;       // packets (CS6 signaling)
    /// true: police excess into best effort; false: shape in the flow queue.
    bool excess_to_best_effort = true;
    /// > 0 enables the hierarchical policing parent: one shared per-class
    /// token bucket over all reserved flows; a packet must conform at both
    /// its flow's child bucket and the parent (two bucket touches per
    /// packet, independent of flow count). 0 = per-flow policing only.
    double parent_rate_bps = 0.0;
    std::uint32_t parent_bucket_bytes = 64'000;
    /// Differential oracle: true selects the original ordered-map flow
    /// table (O(log n) lookups, O(n) service scans). Observable behavior
    /// is identical to the indexed table; exists so randomized tests can
    /// diff the two (mirrors CpuConfig::legacy_scan).
    bool legacy_flow_map = false;
  };

  explicit IntServQueue(Config config);

  // --- reservation plane (driven by the RSVP agent) -------------------------
  void install_reservation(FlowId flow, double rate_bps, std::uint32_t bucket_bytes,
                           TimePoint now);
  void remove_reservation(FlowId flow);
  /// Live re-stamp of an installed reservation: the flow's token bucket is
  /// reconfigured in place (fill level settled at the old rate, clamped to
  /// the new depth) and queued packets stay queued — unlike the RSVP
  /// refresh path in install_reservation, which swaps in a fresh full
  /// bucket. Idempotent; returns false when the flow holds no reservation
  /// (callers fall back to install_reservation). Identical observable
  /// behavior in both storage modes (tests/test_flow_table_diff).
  bool update_reservation(FlowId flow, double rate_bps, std::uint32_t bucket_bytes,
                          TimePoint now);
  /// Live re-stamp of the hierarchical (HTB-style) parent: rate <= 0 drops
  /// the parent level, an existing parent is reconfigured in place
  /// (preserving its fill level), otherwise a fresh parent starts full.
  void set_parent_rate(double rate_bps, std::uint32_t bucket_bytes, TimePoint now);
  [[nodiscard]] double parent_rate_bps() const {
    return parent_ ? parent_->rate_bps() : 0.0;
  }
  [[nodiscard]] bool has_reservation(FlowId flow) const {
    return config_.legacy_flow_map ? flows_.count(flow) > 0 : slot_of_.count(flow) > 0;
  }
  /// Sum of reserved rates. O(1) amortized: maintained incrementally on
  /// id-order appends and recomputed lazily (in id order, so the value is
  /// bit-identical to the legacy full scan) after removes/modifies.
  [[nodiscard]] double reserved_rate_bps() const;
  /// Reserved rate of one flow; 0 when it holds no reservation.
  [[nodiscard]] double flow_rate_bps(FlowId flow) const;
  /// Number of installed reservations.
  [[nodiscard]] std::size_t reservation_count() const {
    return config_.legacy_flow_map ? flows_.size() : slot_of_.size();
  }

  // --- Queue interface -------------------------------------------------------
  std::optional<Packet> enqueue(Packet p, TimePoint now) override;
  std::optional<Packet> dequeue(TimePoint now) override;
  [[nodiscard]] std::optional<Duration> next_ready_delay(TimePoint now) const override;
  [[nodiscard]] std::size_t packets() const override { return packets_; }
  [[nodiscard]] std::size_t bytes() const override { return bytes_; }

 private:
  struct FlowState {
    TokenBucket bucket;
    std::deque<Packet> q;
  };

  // Two-level policing helpers shared by both storage modes: with the
  // parent disabled they collapse to the exact single-bucket calls the
  // original code made (including the refill-on-failed-consume side
  // effect), which keeps pre-HTB configurations bit-identical.
  bool policer_consume(TokenBucket& child, std::uint32_t bytes, TimePoint now);
  [[nodiscard]] Duration policer_wait(const TokenBucket& child, std::uint32_t bytes,
                                      TimePoint now) const;
  /// Shape mode: true when the packet could never conform (larger than the
  /// child or parent bucket depth) and would wedge the flow queue.
  [[nodiscard]] bool shape_unconformable(const TokenBucket& child,
                                         std::uint32_t bytes) const;
  void trace_demote(const Packet& p, TimePoint now);

  // --- indexed flow table (config_.legacy_flow_map == false) ----------------
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  /// Shared FIFO arena: every queued reserved-flow packet lives in one
  /// recycled node pool; per-flow queues are intrusive head/tail lists, so
  /// a flow's queue costs 12 bytes when empty instead of a heap-backed
  /// deque per flow.
  struct PacketNode {
    Packet pkt;
    std::uint32_t next = kNil;
  };
  /// Per-flow FIFO cursor. head/tail/len live together (not as three
  /// parallel arrays) because every touch of a flow needs all three: one
  /// 12-byte line fill per packet instead of three scattered ones.
  struct FlowFifo {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::uint32_t len = 0;
  };

  std::uint32_t pool_alloc(Packet&& p);
  Packet pool_release(std::uint32_t node);
  void flow_push(std::uint32_t slot, FlowId id, Packet&& p);
  Packet flow_pop(std::uint32_t slot, FlowId id);
  [[nodiscard]] const Packet& flow_front(std::uint32_t slot) const {
    return pool_[flow_fifo_[slot].head].pkt;
  }

  std::optional<Packet> enqueue_legacy(Packet p, TimePoint now);
  std::optional<Packet> dequeue_legacy(TimePoint now);
  [[nodiscard]] std::optional<Duration> next_ready_delay_legacy(TimePoint now) const;

  Config config_;
  /// Legacy oracle storage (config_.legacy_flow_map == true).
  std::map<FlowId, FlowState> flows_;  // ordered: deterministic service order
  /// Indexed storage: hashed id -> slot over SoA per-flow fields.
  std::unordered_map<FlowId, std::uint32_t> slot_of_;
  std::vector<TokenBucket> flow_bucket_;    // by slot
  std::vector<FlowFifo> flow_fifo_;         // by slot
  std::vector<std::uint32_t> free_slots_;
  std::vector<PacketNode> pool_;
  std::uint32_t pool_free_ = kNil;
  /// Explicit rank indexes preserving the legacy map's ascending-FlowId
  /// order: all reserved flows (admission re-sum order) and the subset
  /// with queued packets (service order — dequeue takes begin()). The
  /// ready index carries each flow's slot so the service path never pays
  /// a second hash probe per packet.
  std::set<FlowId> flow_order_;
  std::set<std::pair<FlowId, std::uint32_t>> flow_ready_;
  /// Running sum of reserved rates; dirty after a remove or a mid-order
  /// install, recomputed over flow_order_ on the next query.
  mutable double reserved_sum_ = 0.0;
  mutable bool reserved_dirty_ = false;

  /// Hierarchical policing parent (Config::parent_rate_bps > 0).
  std::optional<TokenBucket> parent_;

  std::deque<Packet> best_effort_;
  std::deque<Packet> control_;
  std::size_t bytes_ = 0;
  std::size_t packets_ = 0;  // total across sub-queues; packets() is hot
};

/// Factory signature used by topology builders: makes the egress queue for
/// one direction of one link.
using QueueFactory = std::unique_ptr<Queue> (*)();

}  // namespace aqm::net

// Egress queue disciplines for router/host ports.
//
// Three disciplines cover the paper's network mechanisms:
//  * DropTailQueue   — plain best-effort FIFO (the "before" picture).
//  * DiffServQueue   — strict-priority per-hop behaviour over PHB classes
//                      derived from each packet's DSCP (Section 3.2).
//  * IntServQueue    — RSVP-installed per-flow token-bucket guaranteed
//                      service ahead of best-effort traffic (Section 3.4).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/time.hpp"
#include "net/dscp.hpp"
#include "net/packet.hpp"
#include "net/token_bucket.hpp"
#include "obs/trace.hpp"

namespace aqm::net {

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t enqueued_bytes = 0;
};

/// Interface all disciplines implement. Time is passed explicitly so the
/// discipline has no dependency on the simulation engine.
class Queue {
 public:
  virtual ~Queue() = default;

  /// Accepts or drops the packet. Returns the packet back when it was
  /// dropped (so the caller can report it); nullopt when accepted.
  virtual std::optional<Packet> enqueue(Packet p, TimePoint now) = 0;

  /// Next packet eligible for transmission, if any.
  virtual std::optional<Packet> dequeue(TimePoint now) = 0;

  /// When packets are queued but none is currently eligible (e.g. a reserved
  /// flow waiting for tokens), returns the delay after which dequeue() should
  /// be retried. nullopt = nothing queued at all.
  [[nodiscard]] virtual std::optional<Duration> next_ready_delay(TimePoint now) const = 0;

  [[nodiscard]] virtual std::size_t packets() const = 0;
  [[nodiscard]] virtual std::size_t bytes() const = 0;
  [[nodiscard]] bool empty() const { return packets() == 0; }

  [[nodiscard]] const QueueStats& stats() const { return stats_; }

  /// Observability wiring (done by the owning Link): lets disciplines with
  /// internal decisions (RED marks/early drops, IntServ policing) record
  /// instants on the link's trace lane. The discipline itself stays free of
  /// any engine dependency — it only ever sees the recorder pointer.
  void set_tracer(obs::TraceRecorder* tracer, std::uint16_t track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

 protected:
  /// Non-null iff a recorder is attached and wants net events.
  [[nodiscard]] obs::TraceRecorder* tracer() const {
    return tracer_ != nullptr && tracer_->wants(obs::TraceCategory::Net) ? tracer_
                                                                         : nullptr;
  }
  [[nodiscard]] std::uint16_t trace_track() const { return trace_track_; }

  void count_enqueue(const Packet& p) {
    ++stats_.enqueued;
    stats_.enqueued_bytes += p.size_bytes;
  }
  void count_drop(const Packet& p) {
    ++stats_.dropped;
    stats_.dropped_bytes += p.size_bytes;
  }
  void count_dequeue() { ++stats_.dequeued; }

 private:
  QueueStats stats_;
  obs::TraceRecorder* tracer_ = nullptr;
  std::uint16_t trace_track_ = 0;
};

/// Plain FIFO with a packet-count capacity.
class DropTailQueue final : public Queue {
 public:
  explicit DropTailQueue(std::size_t capacity_packets);

  std::optional<Packet> enqueue(Packet p, TimePoint now) override;
  std::optional<Packet> dequeue(TimePoint now) override;
  [[nodiscard]] std::optional<Duration> next_ready_delay(TimePoint now) const override;
  [[nodiscard]] std::size_t packets() const override { return q_.size(); }
  [[nodiscard]] std::size_t bytes() const override { return bytes_; }

 private:
  std::size_t capacity_;
  std::deque<Packet> q_;
  std::size_t bytes_ = 0;
};

/// Strict-priority DiffServ PHB: one drop-tail sub-queue per PHB class,
/// always serving the highest non-empty class.
class DiffServQueue final : public Queue {
 public:
  /// `class_capacity` is the per-class packet capacity.
  explicit DiffServQueue(std::size_t class_capacity);

  /// Per-class capacities, indexed by PhbClass.
  explicit DiffServQueue(const std::array<std::size_t, kPhbClassCount>& capacities);

  std::optional<Packet> enqueue(Packet p, TimePoint now) override;
  std::optional<Packet> dequeue(TimePoint now) override;
  [[nodiscard]] std::optional<Duration> next_ready_delay(TimePoint now) const override;
  [[nodiscard]] std::size_t packets() const override { return packets_; }
  [[nodiscard]] std::size_t bytes() const override { return bytes_; }

  [[nodiscard]] std::size_t class_packets(PhbClass c) const {
    return classes_[static_cast<std::size_t>(c)].size();
  }

 private:
  std::array<std::deque<Packet>, kPhbClassCount> classes_;
  std::array<std::size_t, kPhbClassCount> capacities_;
  std::size_t bytes_ = 0;
  std::size_t packets_ = 0;  // total across classes; packets() is on the hot path
};

/// IntServ guaranteed service. Flows with an installed reservation get a
/// per-flow FIFO policed by a token bucket; conforming reserved packets are
/// served strictly ahead of best effort. Two policing disciplines for a
/// reserved flow's excess traffic:
///  * demote (default): non-conforming packets drop into the best-effort
///    queue, so an over-rate flow still uses spare capacity (RFC 2211
///    controlled-load style policing);
///  * shape: non-conforming packets wait in the flow queue for tokens and
///    are tail-dropped when it fills.
/// Control-plane (CS6) packets bypass into a dedicated high-priority
/// sub-queue so signaling survives congestion.
class IntServQueue final : public Queue {
 public:
  struct Config {
    std::size_t best_effort_capacity = 1000;  // packets
    std::size_t flow_capacity = 100;          // packets per reserved flow
    std::size_t control_capacity = 100;       // packets (CS6 signaling)
    /// true: police excess into best effort; false: shape in the flow queue.
    bool excess_to_best_effort = true;
  };

  explicit IntServQueue(Config config);

  // --- reservation plane (driven by the RSVP agent) -------------------------
  void install_reservation(FlowId flow, double rate_bps, std::uint32_t bucket_bytes,
                           TimePoint now);
  void remove_reservation(FlowId flow);
  [[nodiscard]] bool has_reservation(FlowId flow) const { return flows_.count(flow) > 0; }
  [[nodiscard]] double reserved_rate_bps() const;
  /// Reserved rate of one flow; 0 when it holds no reservation.
  [[nodiscard]] double flow_rate_bps(FlowId flow) const;

  // --- Queue interface -------------------------------------------------------
  std::optional<Packet> enqueue(Packet p, TimePoint now) override;
  std::optional<Packet> dequeue(TimePoint now) override;
  [[nodiscard]] std::optional<Duration> next_ready_delay(TimePoint now) const override;
  [[nodiscard]] std::size_t packets() const override { return packets_; }
  [[nodiscard]] std::size_t bytes() const override { return bytes_; }

 private:
  struct FlowState {
    TokenBucket bucket;
    std::deque<Packet> q;
  };

  Config config_;
  std::map<FlowId, FlowState> flows_;  // ordered: deterministic service order
  std::deque<Packet> best_effort_;
  std::deque<Packet> control_;
  std::size_t bytes_ = 0;
  std::size_t packets_ = 0;  // total across sub-queues; packets() is hot
};

/// Factory signature used by topology builders: makes the egress queue for
/// one direction of one link.
using QueueFactory = std::unique_ptr<Queue> (*)();

}  // namespace aqm::net

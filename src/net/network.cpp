#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

#include "common/log.hpp"
#include "obs/telemetry.hpp"

namespace aqm::net {

namespace {
std::unique_ptr<Queue> default_queue() { return std::make_unique<DropTailQueue>(1000); }
}  // namespace

Network::Network(sim::Engine& engine) : engine_(engine) {}

NodeId Network::add_node(std::string name) {
  nodes_.push_back(Node{std::move(name), nullptr, nullptr});
  routes_dirty_ = true;
  return static_cast<NodeId>(nodes_.size() - 1);
}

Link& Network::add_link(NodeId from, NodeId to, LinkConfig config,
                        std::unique_ptr<Queue> queue) {
  assert(from >= 0 && static_cast<std::size_t>(from) < nodes_.size());
  assert(to >= 0 && static_cast<std::size_t>(to) < nodes_.size());
  assert(from != to);
  if (!queue) queue = default_queue();
  auto link = std::make_unique<Link>(engine_, from, to, config, std::move(queue));
  Link& ref = *link;
  ref.set_trace_name("link:" + node_name(from) + "->" + node_name(to));
  ref.set_delivery([this, to](Packet&& p) { deliver_local(to, std::move(p)); });
  ref.set_drop_hook([this](const Packet& p) { on_drop(p); });
  links_[link_key(from, to)] = std::move(link);
  routes_dirty_ = true;
  return ref;
}

void Network::add_duplex_link(NodeId a, NodeId b, LinkConfig config,
                              const std::function<std::unique_ptr<Queue>()>& make_queue) {
  add_link(a, b, config, make_queue ? make_queue() : nullptr);
  add_link(b, a, config, make_queue ? make_queue() : nullptr);
}

const std::string& Network::node_name(NodeId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].name;
}

Link* Network::link_between(NodeId from, NodeId to) {
  const auto it = links_.find(link_key(from, to));
  return it == links_.end() ? nullptr : it->second.get();
}

const Link* Network::link_between(NodeId from, NodeId to) const {
  const auto it = links_.find(link_key(from, to));
  return it == links_.end() ? nullptr : it->second.get();
}

void Network::set_receiver(NodeId node, ReceiverFn fn) {
  assert(node >= 0 && static_cast<std::size_t>(node) < nodes_.size());
  nodes_[static_cast<std::size_t>(node)].receiver = std::move(fn);
}

Network::ReceiverFn Network::swap_receiver(NodeId node, ReceiverFn fn) {
  assert(node >= 0 && static_cast<std::size_t>(node) < nodes_.size());
  ReceiverFn& slot = nodes_[static_cast<std::size_t>(node)].receiver;
  ReceiverFn old = std::move(slot);
  slot = std::move(fn);
  return old;
}

void Network::set_control_handler(NodeId node, ControlFn fn) {
  assert(node >= 0 && static_cast<std::size_t>(node) < nodes_.size());
  nodes_[static_cast<std::size_t>(node)].control = std::move(fn);
}

void Network::send(NodeId from, Packet p) {
  assert(from >= 0 && static_cast<std::size_t>(from) < nodes_.size());
  assert(p.dst >= 0 && static_cast<std::size_t>(p.dst) < nodes_.size());
  p.src = p.src == kInvalidNode ? from : p.src;
  p.sent_at = engine_.now();

  auto& counters = flows_[p.flow];
  ++counters.sent;
  counters.sent_bytes += p.size_bytes;
  ++totals_.sent;
  totals_.sent_bytes += p.size_bytes;

  forward(from, std::move(p));
}

void Network::forward(NodeId from, Packet&& p) {
  if (from == p.dst) {
    deliver_local(from, std::move(p));
    return;
  }
  const NodeId hop = next_hop(from, p.dst);
  if (hop == kInvalidNode) {
    AQM_WARN() << "net: no route " << node_name(from) << " -> " << node_name(p.dst)
               << ", packet dropped";
    on_drop(p);
    return;
  }
  Link* link = link_between(from, hop);
  assert(link != nullptr);
  link->send(std::move(p));
}

void Network::deliver_local(NodeId node, Packet&& p) {
  Node& n = nodes_[static_cast<std::size_t>(node)];
  // RSVP-style hop-by-hop interception: any node with a control handler
  // processes control packets, even in transit.
  if (p.kind != PacketKind::Data) {
    if (n.control) {
      n.control(node, std::move(p));
      return;
    }
    if (node != p.dst) {
      forward(node, std::move(p));  // no agent here: forward transparently
      return;
    }
    return;  // control packet at destination without an agent: swallowed
  }
  if (node != p.dst) {
    forward(node, std::move(p));
    return;
  }
  auto& counters = flows_[p.flow];
  ++counters.delivered;
  counters.delivered_bytes += p.size_bytes;
  ++totals_.delivered;
  totals_.delivered_bytes += p.size_bytes;
  if (obs::TelemetryHub* th = engine_.telemetry()) {
    th->on_delivery(p.flow, engine_.now(), p.size_bytes);
  }
  if (n.receiver) n.receiver(std::move(p));
}

void Network::on_drop(const Packet& p) {
  ++flows_[p.flow].dropped;
  ++totals_.dropped;
  if (obs::TelemetryHub* th = engine_.telemetry()) {
    th->on_drop(p.flow, engine_.now(), p.trace);
  }
}

void Network::ensure_routes() const {
  if (!routes_dirty_) return;
  const auto n = nodes_.size();
  next_hop_table_.assign(n * n, kInvalidNode);

  // Adjacency from the hashed link table. The table's iteration order is
  // unspecified, so sort each neighbor list: BFS then visits neighbors in
  // ascending NodeId exactly as the old ordered (from,to) map produced,
  // keeping tie-broken shortest paths byte-identical.
  std::vector<std::vector<NodeId>> adj(n);
  for (const auto& [key, link] : links_) {
    adj[static_cast<std::size_t>(key >> 32)].push_back(
        static_cast<NodeId>(static_cast<std::uint32_t>(key)));
  }
  for (auto& neighbors : adj) std::sort(neighbors.begin(), neighbors.end());

  // BFS from every destination over reversed edges would be cheaper, but
  // topologies here are tiny; do a BFS per source.
  for (std::size_t src = 0; src < n; ++src) {
    std::vector<NodeId> parent(n, kInvalidNode);
    std::vector<bool> seen(n, false);
    std::deque<NodeId> frontier;
    frontier.push_back(static_cast<NodeId>(src));
    seen[src] = true;
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const NodeId v : adj[static_cast<std::size_t>(u)]) {
        if (seen[static_cast<std::size_t>(v)]) continue;
        seen[static_cast<std::size_t>(v)] = true;
        parent[static_cast<std::size_t>(v)] = u;
        frontier.push_back(v);
      }
    }
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (dst == src || !seen[dst]) continue;
      // Walk back from dst to src to find the first hop.
      NodeId hop = static_cast<NodeId>(dst);
      while (parent[static_cast<std::size_t>(hop)] != static_cast<NodeId>(src)) {
        hop = parent[static_cast<std::size_t>(hop)];
        assert(hop != kInvalidNode);
      }
      next_hop_table_[src * n + dst] = hop;
    }
  }
  routes_dirty_ = false;
}

NodeId Network::next_hop(NodeId from, NodeId dst) const {
  ensure_routes();
  if (from == dst) return dst;
  return next_hop_table_[static_cast<std::size_t>(from) * nodes_.size() +
                         static_cast<std::size_t>(dst)];
}

std::vector<NodeId> Network::path(NodeId from, NodeId dst) const {
  std::vector<NodeId> out;
  out.push_back(from);
  NodeId cur = from;
  while (cur != dst) {
    const NodeId hop = next_hop(cur, dst);
    if (hop == kInvalidNode) return {};
    out.push_back(hop);
    cur = hop;
  }
  return out;
}

const FlowCounters& Network::flow(FlowId id) const {
  const FlowCounters* c = flows_.find(id);
  return c == nullptr ? no_counters_ : *c;
}

void Network::export_metrics(obs::MetricsRegistry& reg, std::string_view prefix) const {
  const std::string p(prefix);
  const auto emit = [&reg](const std::string& base, const FlowCounters& c) {
    reg.counter(base + ".sent").set(c.sent);
    reg.counter(base + ".delivered").set(c.delivered);
    reg.counter(base + ".dropped").set(c.dropped);
    reg.counter(base + ".sent_bytes").set(c.sent_bytes);
    reg.counter(base + ".delivered_bytes").set(c.delivered_bytes);
  };
  emit(p + ".total", totals_);
  flows_.for_each_ordered(
      [&](FlowId id, const FlowCounters& c) { emit(p + ".flow" + std::to_string(id), c); });
}

}  // namespace aqm::net

#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <stdexcept>

#include "common/log.hpp"
#include "obs/telemetry.hpp"

namespace aqm::net {

namespace {
std::unique_ptr<Queue> default_queue() { return std::make_unique<DropTailQueue>(1000); }

void accumulate(FlowCounters& into, const FlowCounters& c) {
  into.sent += c.sent;
  into.delivered += c.delivered;
  into.dropped += c.dropped;
  into.sent_bytes += c.sent_bytes;
  into.delivered_bytes += c.delivered_bytes;
}
}  // namespace

Network::Network(sim::Engine& engine) : engine_(engine) { shards_.resize(1); }

Network::Network(sim::World& world) : engine_(world.engine(0)), world_(&world) {
  shards_.resize(world.partitions());
  world.add_start_hook([this] { finalize_partitions(); });
}

NodeId Network::add_node(std::string name) {
  nodes_.push_back(Node{std::move(name), nullptr, nullptr});
  node_partition_.push_back(0);
  routes_dirty_ = true;
  return static_cast<NodeId>(nodes_.size() - 1);
}

Link& Network::add_link(NodeId from, NodeId to, LinkConfig config,
                        std::unique_ptr<Queue> queue) {
  assert(from >= 0 && static_cast<std::size_t>(from) < nodes_.size());
  assert(to >= 0 && static_cast<std::size_t>(to) < nodes_.size());
  assert(from != to);
  if (!queue) queue = default_queue();
  auto link = std::make_unique<Link>(engine_, from, to, config, std::move(queue));
  Link& ref = *link;
  ref.set_trace_name("link:" + node_name(from) + "->" + node_name(to));
  ref.set_delivery([this, to](Packet&& p) { deliver_local(to, std::move(p)); });
  ref.set_drop_hook([this](const Packet& p) { on_drop(p); });
  links_[link_key(from, to)] = std::move(link);
  routes_dirty_ = true;
  return ref;
}

void Network::add_duplex_link(NodeId a, NodeId b, LinkConfig config,
                              const std::function<std::unique_ptr<Queue>()>& make_queue) {
  add_link(a, b, config, make_queue ? make_queue() : nullptr);
  add_link(b, a, config, make_queue ? make_queue() : nullptr);
}

const std::string& Network::node_name(NodeId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].name;
}

Link* Network::link_between(NodeId from, NodeId to) {
  const auto it = links_.find(link_key(from, to));
  return it == links_.end() ? nullptr : it->second.get();
}

const Link* Network::link_between(NodeId from, NodeId to) const {
  const auto it = links_.find(link_key(from, to));
  return it == links_.end() ? nullptr : it->second.get();
}

void Network::set_receiver(NodeId node, ReceiverFn fn) {
  assert(node >= 0 && static_cast<std::size_t>(node) < nodes_.size());
  nodes_[static_cast<std::size_t>(node)].receiver = std::move(fn);
}

Network::ReceiverFn Network::swap_receiver(NodeId node, ReceiverFn fn) {
  assert(node >= 0 && static_cast<std::size_t>(node) < nodes_.size());
  ReceiverFn& slot = nodes_[static_cast<std::size_t>(node)].receiver;
  ReceiverFn old = std::move(slot);
  slot = std::move(fn);
  return old;
}

void Network::set_control_handler(NodeId node, ControlFn fn) {
  assert(node >= 0 && static_cast<std::size_t>(node) < nodes_.size());
  nodes_[static_cast<std::size_t>(node)].control = std::move(fn);
}

void Network::send(NodeId from, Packet p) {
  assert(from >= 0 && static_cast<std::size_t>(from) < nodes_.size());
  assert(p.dst >= 0 && static_cast<std::size_t>(p.dst) < nodes_.size());
  p.src = p.src == kInvalidNode ? from : p.src;
  p.sent_at = cur_engine().now();

  Shard& shard = cur_shard();
  auto& counters = shard.flows[p.flow];
  ++counters.sent;
  counters.sent_bytes += p.size_bytes;
  ++shard.totals.sent;
  shard.totals.sent_bytes += p.size_bytes;

  forward(from, std::move(p));
}

void Network::forward(NodeId from, Packet&& p) {
  if (from == p.dst) {
    deliver_local(from, std::move(p));
    return;
  }
  const NodeId hop = next_hop(from, p.dst);
  if (hop == kInvalidNode) {
    AQM_WARN() << "net: no route " << node_name(from) << " -> " << node_name(p.dst)
               << ", packet dropped";
    on_drop(p);
    return;
  }
  Link* link = link_between(from, hop);
  assert(link != nullptr);
  link->send(std::move(p));
}

void Network::deliver_local(NodeId node, Packet&& p) {
  Node& n = nodes_[static_cast<std::size_t>(node)];
  // RSVP-style hop-by-hop interception: any node with a control handler
  // processes control packets, even in transit.
  if (p.kind != PacketKind::Data) {
    if (n.control) {
      n.control(node, std::move(p));
      return;
    }
    if (node != p.dst) {
      forward(node, std::move(p));  // no agent here: forward transparently
      return;
    }
    return;  // control packet at destination without an agent: swallowed
  }
  if (node != p.dst) {
    forward(node, std::move(p));
    return;
  }
  Shard& shard = cur_shard();
  auto& counters = shard.flows[p.flow];
  ++counters.delivered;
  counters.delivered_bytes += p.size_bytes;
  ++shard.totals.delivered;
  shard.totals.delivered_bytes += p.size_bytes;
  sim::Engine& eng = cur_engine();
  if (telemetry_log_) {
    shard.tel.push_back(TelEvent{eng.now().ns(), p.flow, p.size_bytes, false});
  } else if (obs::TelemetryHub* th = eng.telemetry()) {
    th->on_delivery(p.flow, eng.now(), p.size_bytes);
  }
  if (n.receiver) n.receiver(std::move(p));
}

void Network::on_drop(const Packet& p) {
  Shard& shard = cur_shard();
  ++shard.flows[p.flow].dropped;
  ++shard.totals.dropped;
  sim::Engine& eng = cur_engine();
  if (telemetry_log_) {
    shard.tel.push_back(TelEvent{eng.now().ns(), p.flow, p.trace, true});
  } else if (obs::TelemetryHub* th = eng.telemetry()) {
    th->on_drop(p.flow, eng.now(), p.trace);
  }
}

void Network::ensure_routes() const {
  if (!routes_dirty_) return;
  const auto n = nodes_.size();
  next_hop_table_.assign(n * n, kInvalidNode);

  // Adjacency from the hashed link table. The table's iteration order is
  // unspecified, so sort each neighbor list: BFS then visits neighbors in
  // ascending NodeId exactly as the old ordered (from,to) map produced,
  // keeping tie-broken shortest paths byte-identical.
  std::vector<std::vector<NodeId>> adj(n);
  for (const auto& [key, link] : links_) {
    adj[static_cast<std::size_t>(key >> 32)].push_back(
        static_cast<NodeId>(static_cast<std::uint32_t>(key)));
  }
  for (auto& neighbors : adj) std::sort(neighbors.begin(), neighbors.end());

  // BFS from every destination over reversed edges would be cheaper, but
  // topologies here are tiny; do a BFS per source.
  for (std::size_t src = 0; src < n; ++src) {
    std::vector<NodeId> parent(n, kInvalidNode);
    std::vector<bool> seen(n, false);
    std::deque<NodeId> frontier;
    frontier.push_back(static_cast<NodeId>(src));
    seen[src] = true;
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const NodeId v : adj[static_cast<std::size_t>(u)]) {
        if (seen[static_cast<std::size_t>(v)]) continue;
        seen[static_cast<std::size_t>(v)] = true;
        parent[static_cast<std::size_t>(v)] = u;
        frontier.push_back(v);
      }
    }
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (dst == src || !seen[dst]) continue;
      // Walk back from dst to src to find the first hop.
      NodeId hop = static_cast<NodeId>(dst);
      while (parent[static_cast<std::size_t>(hop)] != static_cast<NodeId>(src)) {
        hop = parent[static_cast<std::size_t>(hop)];
        assert(hop != kInvalidNode);
      }
      next_hop_table_[src * n + dst] = hop;
    }
  }
  routes_dirty_ = false;
}

NodeId Network::next_hop(NodeId from, NodeId dst) const {
  ensure_routes();
  if (from == dst) return dst;
  return next_hop_table_[static_cast<std::size_t>(from) * nodes_.size() +
                         static_cast<std::size_t>(dst)];
}

std::vector<NodeId> Network::path(NodeId from, NodeId dst) const {
  std::vector<NodeId> out;
  out.push_back(from);
  NodeId cur = from;
  while (cur != dst) {
    const NodeId hop = next_hop(cur, dst);
    if (hop == kInvalidNode) return {};
    out.push_back(hop);
    cur = hop;
  }
  return out;
}

const FlowCounters& Network::flow(FlowId id) const {
  if (shards_.size() == 1) {
    const FlowCounters* c = shards_[0].flows.find(id);
    return c == nullptr ? no_counters_ : *c;
  }
  merged_scratch_ = FlowCounters{};
  for (const Shard& s : shards_) {
    if (const FlowCounters* c = s.flows.find(id)) accumulate(merged_scratch_, *c);
  }
  return merged_scratch_;
}

const FlowCounters& Network::totals() const {
  if (shards_.size() == 1) return shards_[0].totals;
  merged_scratch_ = FlowCounters{};
  for (const Shard& s : shards_) accumulate(merged_scratch_, s.totals);
  return merged_scratch_;
}

void Network::export_metrics(obs::MetricsRegistry& reg, std::string_view prefix) const {
  const std::string p(prefix);
  const auto emit = [&reg](const std::string& base, const FlowCounters& c) {
    reg.counter(base + ".sent").set(c.sent);
    reg.counter(base + ".delivered").set(c.delivered);
    reg.counter(base + ".dropped").set(c.dropped);
    reg.counter(base + ".sent_bytes").set(c.sent_bytes);
    reg.counter(base + ".delivered_bytes").set(c.delivered_bytes);
  };
  if (shards_.size() == 1) {
    emit(p + ".total", shards_[0].totals);
    shards_[0].flows.for_each_ordered(
        [&](FlowId id, const FlowCounters& c) { emit(p + ".flow" + std::to_string(id), c); });
    return;
  }
  // Shard union, accumulated into one table so lines stay ascending-FlowId
  // and byte-identical to the single-partition export.
  FlowMap<FlowCounters> merged;
  FlowCounters tot{};
  for (Shard& s : shards_) {
    accumulate(tot, s.totals);
    s.flows.for_each_ordered(
        [&](FlowId id, const FlowCounters& c) { accumulate(merged[id], c); });
  }
  emit(p + ".total", tot);
  merged.for_each_ordered(
      [&](FlowId id, const FlowCounters& c) { emit(p + ".flow" + std::to_string(id), c); });
}

void Network::set_node_partition(NodeId node, unsigned partition) {
  assert(node >= 0 && static_cast<std::size_t>(node) < nodes_.size());
  assert(world_ != nullptr && partition < world_->partitions());
  node_partition_[static_cast<std::size_t>(node)] = partition;
}

unsigned Network::node_partition(NodeId node) const {
  assert(node >= 0 && static_cast<std::size_t>(node) < nodes_.size());
  return node_partition_[static_cast<std::size_t>(node)];
}

sim::Engine& Network::engine_of(NodeId node) {
  return world_ != nullptr ? world_->engine(node_partition(node)) : engine_;
}

void Network::auto_partition() {
  assert(world_ != nullptr && "auto_partition needs world mode");
  const unsigned parts = world_->partitions();
  const std::size_t n = nodes_.size();
  std::fill(node_partition_.begin(), node_partition_.end(), 0u);
  if (parts <= 1 || n == 0) return;

  // Undirected adjacency, remembering whether any parallel edge has zero
  // propagation (such an edge must never be cut).
  std::vector<std::vector<NodeId>> adj(n);
  std::vector<std::vector<NodeId>> zero_adj(n);
  for (const auto& [key, link] : links_) {
    const auto a = static_cast<std::size_t>(key >> 32);
    const auto b = static_cast<NodeId>(static_cast<std::uint32_t>(key));
    adj[a].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(static_cast<NodeId>(a));
    if (link->config().propagation <= Duration::zero()) {
      zero_adj[a].push_back(b);
      zero_adj[static_cast<std::size_t>(b)].push_back(static_cast<NodeId>(a));
    }
  }
  for (auto& v : adj) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  // Root: highest-degree node, lowest id on ties (the fan-in hub).
  std::size_t root = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (adj[i].size() > adj[root].size()) root = i;
  }

  // Every branch hanging off the root is one unit: BFS from the root,
  // stamping each node with the root-neighbor its shortest path leaves
  // through. Unreachable nodes become their own units.
  constexpr std::uint32_t kUnassigned = 0xffffffffu;
  std::vector<std::uint32_t> unit(n, kUnassigned);
  std::uint32_t units = 0;
  std::deque<std::size_t> frontier;
  std::vector<std::uint32_t> unit_of_root_neighbor;
  unit[root] = units++;  // unit 0 = the root itself
  unit_of_root_neighbor.push_back(0);
  for (const NodeId nb : adj[root]) {
    const auto v = static_cast<std::size_t>(nb);
    if (unit[v] != kUnassigned) continue;
    unit[v] = units++;
    frontier.push_back(v);
  }
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop_front();
    for (const NodeId nb : adj[u]) {
      const auto v = static_cast<std::size_t>(nb);
      if (unit[v] != kUnassigned) continue;
      unit[v] = unit[u];
      frontier.push_back(v);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (unit[i] == kUnassigned) unit[i] = units++;
  }

  // Zero-propagation edges must stay internal: union the units they join
  // (plain union-find, smaller root id wins so the merge is deterministic).
  std::vector<std::uint32_t> parent(units);
  for (std::uint32_t i = 0; i < units; ++i) parent[i] = i;
  const auto find = [&parent](std::uint32_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (std::size_t a = 0; a < n; ++a) {
    for (const NodeId nb : zero_adj[a]) {
      const std::uint32_t ra = find(unit[a]);
      const std::uint32_t rb = find(unit[static_cast<std::size_t>(nb)]);
      if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
    }
  }

  // Greedy balance: units heaviest-first (ties: lowest unit id, i.e.
  // lowest first-hop NodeId) onto the currently lightest partition; the
  // root's merged unit is pinned to partition 0.
  std::vector<std::uint64_t> weight(units, 0);
  for (std::size_t i = 0; i < n; ++i) ++weight[find(unit[i])];
  std::vector<std::uint32_t> order;
  for (std::uint32_t u = 0; u < units; ++u) {
    if (find(u) == u && u != find(0)) order.push_back(u);
  }
  std::sort(order.begin(), order.end(), [&weight](std::uint32_t a, std::uint32_t b) {
    if (weight[a] != weight[b]) return weight[a] > weight[b];
    return a < b;
  });
  std::vector<std::uint64_t> load(parts, 0);
  std::vector<unsigned> unit_partition(units, 0);
  load[0] = weight[find(0)];
  for (const std::uint32_t u : order) {
    unsigned lightest = 0;
    for (unsigned p = 1; p < parts; ++p) {
      if (load[p] < load[lightest]) lightest = p;
    }
    unit_partition[u] = lightest;
    load[lightest] += weight[u];
  }
  for (std::size_t i = 0; i < n; ++i) {
    node_partition_[i] = unit_partition[find(unit[i])];
  }
}

void Network::finalize_partitions() {
  ensure_routes();
  if (world_ == nullptr) return;
  Duration lookahead = Duration::max();
  for (auto& [key, link] : links_) {
    const unsigned from_part = node_partition(link->from());
    const unsigned to_part = node_partition(link->to());
    link->rebind_engine(world_->engine(from_part));
    if (from_part == to_part) continue;
    if (link->config().propagation <= Duration::zero()) {
      throw std::runtime_error(
          "net: partition cut crosses zero-propagation link " + node_name(link->from()) +
          "->" + node_name(link->to()) + " (no conservative lookahead)");
    }
    link->set_remote_delivery(world_, to_part);
    lookahead = std::min(lookahead, link->config().propagation);
  }
  world_->set_lookahead(lookahead);
}

void Network::enable_telemetry_log() {
  telemetry_log_ = true;
  for (Shard& s : shards_) s.tel.clear();
}

void Network::replay_telemetry(obs::TelemetryHub& hub) const {
  // K-way merge over the per-partition streams (each time-sorted) in
  // (time, partition, sequence) order. With one shard this is exactly the
  // live call order, so replay == streaming; across shards the order of
  // same-instant observations from different partitions is normalized by
  // partition index (DESIGN.md §14 tie-break contract).
  std::vector<std::size_t> idx(shards_.size(), 0);
  for (;;) {
    std::size_t best = shards_.size();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (idx[s] >= shards_[s].tel.size()) continue;
      if (best == shards_.size() ||
          shards_[s].tel[idx[s]].t_ns < shards_[best].tel[idx[best]].t_ns) {
        best = s;
      }
    }
    if (best == shards_.size()) return;
    const TelEvent& e = shards_[best].tel[idx[best]++];
    if (e.drop) {
      hub.on_drop(e.flow, TimePoint{e.t_ns}, e.aux);
    } else {
      hub.on_delivery(e.flow, TimePoint{e.t_ns}, e.aux);
    }
  }
}

TimePoint Network::end_time() const {
  if (world_ == nullptr) return engine_.now();
  TimePoint end = TimePoint::zero();
  for (unsigned p = 0; p < world_->partitions(); ++p) {
    end = std::max(end, world_->engine(p).now());
  }
  return end;
}

}  // namespace aqm::net

// Cross-traffic generation, standing in for the paper's load machines
// (16 Mbps competing traffic in the Figure 4-6 testbed, 43.8 Mbps in the
// reservation experiments).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/engine.hpp"

namespace aqm::net {

class TrafficGenerator {
 public:
  struct Config {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    double rate_bps = 16e6;
    std::uint32_t packet_bytes = kDefaultMtu;
    Dscp dscp = dscp::kBestEffort;
    FlowId flow = kNoFlow;
    bool poisson = false;  // false = CBR spacing
    std::uint64_t seed = 7;
    /// Optional on/off (bursty) modulation: while "on" the generator sends
    /// at rate_bps, then goes silent; durations are exponentially
    /// distributed with these means. Disabled when either is zero. The
    /// long-run average rate is rate_bps * on / (on + off).
    Duration on_mean = Duration::zero();
    Duration off_mean = Duration::zero();
  };

  TrafficGenerator(Network& net, Config config);
  /// Explicit per-trial seed, overriding config.seed. Every generator owns
  /// its private Rng (no shared or global stream), so two trials built with
  /// the same trial seed emit identical packet schedules regardless of
  /// which worker thread runs them.
  TrafficGenerator(Network& net, Config config, std::uint64_t trial_seed);
  ~TrafficGenerator() { stop(); }
  TrafficGenerator(const TrafficGenerator&) = delete;
  TrafficGenerator& operator=(const TrafficGenerator&) = delete;

  void start();
  void stop();
  /// Convenience: schedules start at `from` and stop at `until`.
  void run_between(TimePoint from, TimePoint until);

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }

 private:
  void arm_next();
  void arm_toggle();
  [[nodiscard]] Duration interval();
  [[nodiscard]] bool bursty() const {
    return config_.on_mean > Duration::zero() && config_.off_mean > Duration::zero();
  }

  Network& net_;
  Config config_;
  Rng rng_;
  bool running_ = false;
  bool sending_ = true;  // on/off modulation state (always true when not bursty)
  sim::EventId next_event_{};
  sim::EventId toggle_event_{};
  std::uint64_t sent_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace aqm::net

// A unidirectional link: an egress queue plus a serializing transmitter
// with fixed bandwidth and propagation delay.
//
// Two transmitter implementations share identical packet timing:
//
//  * Coalesced (default). The transmitter is "virtual": instead of a
//    dedicated end-of-serialization event per packet, the link tracks
//    avail_at_ (the instant the transmitter frees) and advances the
//    service loop lazily — from send() before each new arrival becomes
//    visible, and from the delivery/drop events it already schedules
//    anyway. Service decisions that logically happened in the past are
//    replayed at their exact original instants (the queue provably did
//    not change in between, because every arrival catches up first), so
//    dequeue order, token-bucket accounting, loss draws and delivery
//    times are bit-identical to the legacy path while steady state costs
//    ~1 engine event per packet per hop instead of ~2.
//
//  * Legacy (config.coalesced_events = false). One event at the end of
//    serialization plus one per delivery, as a literal store-and-forward
//    transcription. Kept as the behavioural oracle for equivalence tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/engine.hpp"

namespace aqm::sim {
class World;
}

namespace aqm::net {

struct LinkConfig {
  double bandwidth_bps = 10e6;       // 10 Mbps, the paper's bottleneck segment
  Duration propagation = microseconds(100);
  /// Fraction of bandwidth RSVP admission control may hand out.
  double reservable_fraction = 0.9;
  /// Random per-packet corruption loss (noisy wireless channels). Applied
  /// after transmission, before delivery; deterministic per (link, seed).
  double loss_probability = 0.0;
  std::uint64_t loss_seed = 0;
  /// Per-hop event coalescing (see the file comment). false selects the
  /// legacy one-event-per-stage transmitter.
  bool coalesced_events = true;
};

class Link {
 public:
  using DeliveryFn = std::function<void(Packet&&)>;
  using DropFn = std::function<void(const Packet&)>;

  Link(sim::Engine& engine, NodeId from, NodeId to, LinkConfig config,
       std::unique_ptr<Queue> queue);
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  [[nodiscard]] NodeId from() const { return from_; }
  [[nodiscard]] NodeId to() const { return to_; }
  [[nodiscard]] const LinkConfig& config() const { return config_; }
  [[nodiscard]] Queue& queue() { return *queue_; }
  [[nodiscard]] const Queue& queue() const { return *queue_; }

  /// Wired by the Network: called when a packet finishes propagation.
  void set_delivery(DeliveryFn fn) { deliver_ = std::move(fn); }
  /// Wired by the Network: called when the egress queue drops a packet.
  void set_drop_hook(DropFn fn) { on_drop_ = std::move(fn); }

  /// Marks this link as a partition boundary (see DESIGN.md §14): the
  /// sender side keeps running on its own engine, but completed
  /// transmissions hand the delivery to `to_partition` through the
  /// world's cross-partition channels, arriving exactly one propagation
  /// delay after the transmitter frees. Boundary links additionally pin
  /// a tx-end catch-up event so service decisions are never replayed
  /// late — which is what makes `propagation` an exact conservative
  /// lookahead for the cut. Wired by Network::finalize_partitions().
  void set_remote_delivery(sim::World* world, unsigned to_partition) {
    remote_world_ = world;
    remote_partition_ = to_partition;
  }
  [[nodiscard]] bool is_boundary() const { return remote_world_ != nullptr; }

  /// Re-points the link at another engine (the owning partition's).
  /// Only legal before any traffic: partition assignment happens between
  /// topology construction and the first send.
  void rebind_engine(sim::Engine& engine) {
    assert(tx_packets_ == 0 && !decision_pending_ && !busy_ && !retry_event_.valid());
    engine_ = &engine;
  }

  /// Offers a packet to the egress queue and kicks the transmitter.
  void send(Packet p);

  /// Serialization time of a packet of the given size on this link.
  [[nodiscard]] Duration transmission_time(std::uint32_t bytes) const;

  /// Observability: label for this link's trace lane (set by the Network
  /// with node names; defaults to numeric ids). The engine's recorder is
  /// resolved lazily at each instrumentation point, so a tracer attached
  /// after topology construction still sees every hop.
  void set_trace_name(std::string name) {
    trace_name_ = std::move(name);
    trace_bound_ = nullptr;  // re-resolve lane under the new name
  }

  [[nodiscard]] std::uint64_t packets_transmitted() const { return tx_packets_; }
  [[nodiscard]] std::uint64_t bytes_transmitted() const { return tx_bytes_; }
  /// Fraction of elapsed time the transmitter has been busy.
  [[nodiscard]] double utilization() const;
  /// Packets lost to random corruption (loss_probability).
  [[nodiscard]] std::uint64_t packets_corrupted() const { return corrupted_; }

 private:
  // --- coalesced path ---
  void pump();
  void service(TimePoint t);
  void start_tx(Packet p, TimePoint t);
  /// Posts the delivery of `p` at `arrival` to the destination partition.
  void remote_deliver(Packet p, TimePoint arrival);
  // --- legacy path ---
  void legacy_try_transmit();
  // --- observability ---
  /// Engine recorder iff net tracing is on; binds the lane on first use.
  [[nodiscard]] obs::TraceRecorder* net_tracer();
  void trace_qlen(obs::TraceRecorder* tr, TimePoint t);
  /// Engine telemetry hub; hands the queue discipline the same pointer
  /// when it changes (one compare per send, like the tracer binding).
  [[nodiscard]] obs::TelemetryHub* net_telemetry();

  sim::Engine* engine_;
  NodeId from_;
  NodeId to_;
  LinkConfig config_;
  std::unique_ptr<Queue> queue_;
  DeliveryFn deliver_;
  DropFn on_drop_;
  sim::World* remote_world_ = nullptr;  // non-null: cross-partition delivery
  unsigned remote_partition_ = 0;

  /// Coalesced: instant the transmitter frees (end of the last committed
  /// transmission). decision_pending_ means the service decision due at
  /// that instant has not been replayed yet.
  TimePoint avail_at_ = TimePoint::zero();
  bool decision_pending_ = false;
  bool busy_ = false;  // legacy path only
  sim::EventId retry_event_{};
  std::uint64_t tx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t corrupted_ = 0;
  std::int64_t busy_ns_ = 0;
  Rng loss_rng_;

  std::string trace_name_;
  obs::TraceRecorder* trace_bound_ = nullptr;  // recorder the lane is bound to
  obs::TelemetryHub* telemetry_bound_ = nullptr;  // hub the queue was handed
  std::uint16_t trace_track_ = 0;
  const char* qlen_name_ = nullptr;  // interned "qlen <link>" counter label
};

}  // namespace aqm::net

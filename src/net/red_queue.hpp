// Random Early Detection queue with ECN support (RFC 2309 / RFC 3168).
//
// Classic RED: maintain an EWMA of the queue length; between the min and
// max thresholds, mark/drop arriving packets with probability rising
// linearly to max_probability (spread uniformly using the count-since-
// last-mark refinement); above max, mark/drop everything. ECN-capable
// packets are marked CongestionExperienced instead of dropped, giving
// end-to-end adaptation (QuO contracts) an early congestion signal before
// any loss occurs — the counterpart to the ECN bits the paper points out
// in the DiffServ byte.
#pragma once

#include <cstdint>
#include <deque>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/queue.hpp"

namespace aqm::net {

struct RedConfig {
  std::size_t capacity_packets = 1000;
  double min_threshold = 50.0;    // avg queue length (packets)
  double max_threshold = 250.0;
  double max_probability = 0.1;   // mark/drop probability at max_threshold
  double weight = 0.002;          // EWMA weight per arrival
  bool ecn = true;                // mark ECN-capable packets instead of dropping
  std::uint64_t seed = 99;
};

class RedQueue final : public Queue {
 public:
  explicit RedQueue(RedConfig config);

  std::optional<Packet> enqueue(Packet p, TimePoint now) override;
  std::optional<Packet> dequeue(TimePoint now) override;
  [[nodiscard]] std::optional<Duration> next_ready_delay(TimePoint now) const override;
  [[nodiscard]] std::size_t packets() const override { return q_.size(); }
  [[nodiscard]] std::size_t bytes() const override { return bytes_; }

  [[nodiscard]] double average_queue() const { return avg_; }
  [[nodiscard]] std::uint64_t ecn_marked() const { return marked_; }
  [[nodiscard]] std::uint64_t early_dropped() const { return early_dropped_; }

 private:
  /// True if RED decides this arrival should be marked/dropped.
  bool congestion_signal();

  RedConfig config_;
  Rng rng_;
  std::deque<Packet> q_;
  std::size_t bytes_ = 0;
  double avg_ = 0.0;
  int count_since_mark_ = -1;  // RED's "count" variable
  std::uint64_t marked_ = 0;
  std::uint64_t early_dropped_ = 0;
};

}  // namespace aqm::net

// The unit of transfer in the simulated network.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "net/dscp.hpp"
#include "net/packet_payload.hpp"

namespace aqm::net {

/// Identifies a node (host or router) in a Network.
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Identifies an end-to-end traffic flow (for reservations and statistics).
using FlowId = std::uint64_t;
inline constexpr FlowId kNoFlow = 0;

/// Conventional Ethernet MTU; senders must fragment above this.
inline constexpr std::uint32_t kDefaultMtu = 1500;

enum class PacketKind : std::uint8_t {
  Data = 0,
  RsvpPath,
  RsvpResv,
  RsvpResvErr,
  RsvpTear,
};

/// The two ECN bits that share the DiffServ byte ("six bits of DiffServ
/// Codepoint ... and two bits of Explicit Congestion Notification").
enum class Ecn : std::uint8_t {
  NotCapable = 0,
  Capable = 1,
  CongestionExperienced = 3,
};

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t size_bytes = 0;
  Dscp dscp = dscp::kBestEffort;
  Ecn ecn = Ecn::NotCapable;
  FlowId flow = kNoFlow;
  std::uint64_t seq = 0;       // per-flow sequence number, set by the sender
  TimePoint sent_at{};         // stamped by Network::send
  std::uint64_t trace = 0;     // causal trace id (0 = untraced); see obs/trace.hpp
  PacketKind kind = PacketKind::Data;
  PacketPayload payload;       // opaque application payload (e.g. GIOP fragment)
};

}  // namespace aqm::net

// RSVP/IntServ signaling (RFC 2205, simplified).
//
// Protocol shape mirrors real RSVP:
//  * The sender emits a PATH message toward the receiver. Every RSVP-capable
//    node on the way records path state (previous hop) and forwards it.
//  * The receiver answers with a RESV message that retraces the recorded
//    path hop by hop. Each node admits the flow on its egress link toward
//    the downstream node (sum of reserved rates <= reservable fraction of
//    link bandwidth) and installs a token-bucket reservation in that link's
//    IntServ queue.
//  * Admission failure generates a ResvErr to the sender and a Tear toward
//    the receiver that removes any partially installed state.
//  * PATH is retransmitted a few times if no confirmation arrives
//    (signaling packets are CS6 but can still be lost on non-IntServ hops).
//
// One RsvpAgent is attached per node; the sender-side agent exposes the
// reserve/release API used by the A/V streaming service and the core
// network QoS manager.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.hpp"
#include "common/time.hpp"
#include "net/flow_table.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"

namespace aqm::net {

/// IntServ TSpec (simplified): token rate and bucket depth.
struct FlowSpec {
  double rate_bps = 0.0;
  std::uint32_t bucket_bytes = 16'000;

  friend bool operator==(const FlowSpec&, const FlowSpec&) = default;
};

struct PathMsg {
  FlowId flow = kNoFlow;
  NodeId sender = kInvalidNode;
  NodeId receiver = kInvalidNode;
  FlowSpec spec;
  NodeId phop = kInvalidNode;  // previous RSVP hop, updated in flight
};

struct ResvMsg {
  FlowId flow = kNoFlow;
  NodeId sender = kInvalidNode;
  NodeId receiver = kInvalidNode;
  FlowSpec spec;
  NodeId nhop = kInvalidNode;  // the downstream node that sent this RESV
};

struct ResvErrMsg {
  FlowId flow = kNoFlow;
  NodeId sender = kInvalidNode;
  std::string reason;
};

struct TearMsg {
  FlowId flow = kNoFlow;
  NodeId sender = kInvalidNode;
  NodeId receiver = kInvalidNode;
};

struct RsvpConfig {
  Duration retry_timeout = milliseconds(250);
  int max_retries = 3;
  std::uint32_t message_bytes = 128;
};

class RsvpAgent {
 public:
  using ReserveCallback = std::function<void(Status<std::string>)>;
  using Config = RsvpConfig;

  RsvpAgent(Network& net, NodeId node, Config config = {});
  RsvpAgent(const RsvpAgent&) = delete;
  RsvpAgent& operator=(const RsvpAgent&) = delete;

  [[nodiscard]] NodeId node() const { return node_; }

  /// Requests an end-to-end reservation for `flow` from this node to
  /// `receiver`. The callback fires exactly once with the outcome.
  /// Re-reserving an existing flow re-signals with the new spec (modify).
  void reserve(FlowId flow, NodeId receiver, FlowSpec spec, ReserveCallback cb);

  /// Tears down a reservation established from this node.
  void release(FlowId flow);

  /// True once this (sender-side) agent has received the RESV confirmation.
  [[nodiscard]] bool confirmed(FlowId flow) const { return confirmed_.contains(flow); }

  /// True if this node holds PATH state for the flow (any hop).
  [[nodiscard]] bool has_path_state(FlowId flow) const { return path_state_.contains(flow); }

 private:
  struct PathState {
    NodeId phop;
    NodeId sender;
    NodeId receiver;
    FlowSpec spec;
  };
  struct PendingReserve {
    ReserveCallback cb;
    FlowSpec spec;
    NodeId receiver;
    sim::EventId timeout{};
    int attempts = 0;
  };

  void handle(NodeId node, Packet&& p);
  void on_path(PathMsg msg);
  void on_resv(ResvMsg msg);
  void on_resv_err(ResvErrMsg msg);
  void on_tear(TearMsg msg);

  void send_path(FlowId flow);
  void arm_timeout(FlowId flow);
  void finish_pending(FlowId flow, Status<std::string> status);

  // Installs/removes a reservation on the egress link node_ -> neighbor.
  // Returns error string on admission failure.
  Status<std::string> install_on_link(NodeId neighbor, FlowId flow, const FlowSpec& spec);
  void remove_on_link(NodeId neighbor, FlowId flow);

  template <typename Msg>
  void emit(NodeId dst, PacketKind kind, Msg msg);

  Network& net_;
  NodeId node_;
  Config config_;
  // Per-flow soft state lives in slot arenas (DESIGN.md §10): refresh/tear
  // churn at scale recycles slots instead of exercising the heap, and every
  // lookup on the signaling path is one hash probe. None of these tables is
  // ever iterated, so no ordering surface is needed here.
  FlowMap<PathState> path_state_;
  FlowMap<PendingReserve> pending_;
  FlowMap<NodeId> confirmed_;  // flow -> receiver (sender side)
};

}  // namespace aqm::net

#include "net/rsvp.hpp"

#include <cassert>

#include "common/log.hpp"

namespace aqm::net {

// Signaling messages ride in packet payloads; keep them inside the inline
// buffer so emitting them never allocates.
static_assert(sizeof(PathMsg) <= PacketPayload::kInlineSize);
static_assert(sizeof(ResvMsg) <= PacketPayload::kInlineSize);
static_assert(sizeof(ResvErrMsg) <= PacketPayload::kInlineSize);
static_assert(sizeof(TearMsg) <= PacketPayload::kInlineSize);

RsvpAgent::RsvpAgent(Network& net, NodeId node, Config config)
    : net_(net), node_(node), config_(config) {
  net_.set_control_handler(node_, [this](NodeId at, Packet&& p) { handle(at, std::move(p)); });
}

template <typename Msg>
void RsvpAgent::emit(NodeId dst, PacketKind kind, Msg msg) {
  Packet p;
  p.dst = dst;
  p.size_bytes = config_.message_bytes;
  p.dscp = dscp::kCs6;
  p.kind = kind;
  p.payload = std::move(msg);
  net_.send(node_, std::move(p));
}

void RsvpAgent::reserve(FlowId flow, NodeId receiver, FlowSpec spec, ReserveCallback cb) {
  assert(flow != kNoFlow);
  assert(receiver != node_ && "cannot reserve to self");
  assert(spec.rate_bps > 0.0);
  // Supersede any in-flight request for the same flow.
  if (PendingReserve* prev = pending_.find(flow)) {
    net_.engine().cancel(prev->timeout);
    if (prev->cb) prev->cb(Status<std::string>::err("superseded by a new request"));
    pending_.erase(flow);
  }
  pending_[flow] = PendingReserve{std::move(cb), spec, receiver, sim::EventId{}, 0};
  send_path(flow);
}

void RsvpAgent::send_path(FlowId flow) {
  PendingReserve* pending = pending_.find(flow);
  assert(pending != nullptr);
  ++pending->attempts;
  PathMsg msg;
  msg.flow = flow;
  msg.sender = node_;
  msg.receiver = pending->receiver;
  msg.spec = pending->spec;
  msg.phop = node_;
  // Local path state lets the sender process the returning RESV.
  path_state_[flow] = PathState{kInvalidNode, node_, msg.receiver, msg.spec};
  emit(msg.receiver, PacketKind::RsvpPath, msg);
  arm_timeout(flow);
}

void RsvpAgent::arm_timeout(FlowId flow) {
  PendingReserve* pending = pending_.find(flow);
  assert(pending != nullptr);
  pending->timeout = net_.engine().after(config_.retry_timeout, [this, flow] {
    const PendingReserve* pr = pending_.find(flow);
    if (pr == nullptr) return;
    if (pr->attempts >= config_.max_retries) {
      finish_pending(flow, Status<std::string>::err("reservation timed out"));
      return;
    }
    AQM_DEBUG() << "rsvp: node " << node_ << " retrying PATH for flow " << flow;
    send_path(flow);
  });
}

void RsvpAgent::finish_pending(FlowId flow, Status<std::string> status) {
  PendingReserve* pr = pending_.find(flow);
  if (pr == nullptr) return;
  net_.engine().cancel(pr->timeout);
  auto cb = std::move(pr->cb);
  pending_.erase(flow);
  if (cb) cb(std::move(status));
}

void RsvpAgent::release(FlowId flow) {
  TearMsg msg;
  msg.flow = flow;
  msg.sender = node_;
  const NodeId* conf = confirmed_.find(flow);
  const PathState* ps = path_state_.find(flow);
  NodeId receiver = kInvalidNode;
  if (conf != nullptr) {
    receiver = *conf;
  } else if (ps != nullptr) {
    receiver = ps->receiver;
  }
  finish_pending(flow, Status<std::string>::err("released"));
  confirmed_.erase(flow);
  path_state_.erase(flow);
  if (receiver == kInvalidNode) return;
  msg.receiver = receiver;
  // Remove our own egress reservation, then tell the rest of the path.
  remove_on_link(net_.next_hop(node_, receiver), flow);
  emit(receiver, PacketKind::RsvpTear, msg);
}

Status<std::string> RsvpAgent::install_on_link(NodeId neighbor, FlowId flow,
                                               const FlowSpec& spec) {
  if (neighbor == kInvalidNode) return Status<std::string>::err("no route for reservation");
  Link* link = net_.link_between(node_, neighbor);
  if (link == nullptr) return Status<std::string>::err("no link toward downstream hop");
  auto* q = dynamic_cast<IntServQueue*>(&link->queue());
  if (q == nullptr) {
    // Non-IntServ hop (e.g. an over-provisioned host uplink): nothing to
    // install, treat as admitted. Real deployments mix IntServ segments
    // with plain ones the same way.
    return {};
  }
  const double budget = link->config().bandwidth_bps * link->config().reservable_fraction;
  // On a modify, the flow's old rate is replaced rather than added.
  const double already = q->reserved_rate_bps() - q->flow_rate_bps(flow);
  obs::TraceRecorder* tr = net_.engine().tracer_for(obs::TraceCategory::Net);
  if (already + spec.rate_bps > budget) {
    if (tr != nullptr) {
      tr->instant(obs::TraceCategory::Net, "rsvp.reject",
                  tr->track("rsvp:" + net_.node_name(node_)), net_.engine().now(),
                  tr->current(),
                  {{"flow", static_cast<double>(flow)}, {"rate_bps", spec.rate_bps}});
    }
    return Status<std::string>::err("admission denied on link " +
                                    net_.node_name(node_) + "->" +
                                    net_.node_name(neighbor));
  }
  q->install_reservation(flow, spec.rate_bps, spec.bucket_bytes, net_.engine().now());
  if (tr != nullptr) {
    tr->instant(obs::TraceCategory::Net, "rsvp.admit",
                tr->track("rsvp:" + net_.node_name(node_)), net_.engine().now(),
                tr->current(),
                {{"flow", static_cast<double>(flow)}, {"rate_bps", spec.rate_bps}});
  }
  return {};
}

void RsvpAgent::remove_on_link(NodeId neighbor, FlowId flow) {
  if (neighbor == kInvalidNode) return;
  Link* link = net_.link_between(node_, neighbor);
  if (link == nullptr) return;
  if (auto* q = dynamic_cast<IntServQueue*>(&link->queue())) q->remove_reservation(flow);
}

void RsvpAgent::handle(NodeId node, Packet&& p) {
  assert(node == node_);
  switch (p.kind) {
    case PacketKind::RsvpPath:
      on_path(p.payload.take<PathMsg>());
      return;
    case PacketKind::RsvpResv:
      on_resv(p.payload.take<ResvMsg>());
      return;
    case PacketKind::RsvpResvErr:
      on_resv_err(p.payload.take<ResvErrMsg>());
      return;
    case PacketKind::RsvpTear:
      on_tear(p.payload.take<TearMsg>());
      return;
    case PacketKind::Data:
      assert(false && "data packet routed to control handler");
      return;
  }
}

void RsvpAgent::on_path(PathMsg msg) {
  if (node_ != msg.sender) {
    path_state_[msg.flow] = PathState{msg.phop, msg.sender, msg.receiver, msg.spec};
  }
  if (node_ == msg.receiver) {
    // Receiver: answer with RESV retracing the path.
    ResvMsg resv;
    resv.flow = msg.flow;
    resv.sender = msg.sender;
    resv.receiver = msg.receiver;
    resv.spec = msg.spec;
    resv.nhop = node_;
    emit(msg.phop, PacketKind::RsvpResv, resv);
    return;
  }
  // Transit (or sender) node: forward toward the receiver.
  PathMsg fwd = msg;
  fwd.phop = node_;
  emit(msg.receiver, PacketKind::RsvpPath, fwd);
}

void RsvpAgent::on_resv(ResvMsg msg) {
  const PathState* ps = path_state_.find(msg.flow);
  if (ps == nullptr) {
    AQM_DEBUG() << "rsvp: node " << node_ << " got RESV without path state, flow "
                << msg.flow;
    return;
  }
  // Reserve on our egress toward the downstream node the RESV came from:
  // that link carries the flow's data.
  const auto admitted = install_on_link(msg.nhop, msg.flow, msg.spec);
  if (!admitted) {
    AQM_DEBUG() << "rsvp: flow " << msg.flow << " rejected at node " << node_ << ": "
                << admitted.error();
    // Tell the sender it failed...
    ResvErrMsg err;
    err.flow = msg.flow;
    err.sender = msg.sender;
    err.reason = admitted.error();
    if (node_ == msg.sender) {
      on_resv_err(std::move(err));
    } else {
      emit(msg.sender, PacketKind::RsvpResvErr, err);
    }
    // ...and tear down what the downstream nodes already installed.
    TearMsg tear;
    tear.flow = msg.flow;
    tear.sender = msg.sender;
    tear.receiver = msg.receiver;
    emit(msg.receiver, PacketKind::RsvpTear, tear);
    return;
  }
  if (node_ == msg.sender) {
    confirmed_[msg.flow] = msg.receiver;
    finish_pending(msg.flow, {});
    return;
  }
  // Continue upstream along the recorded path. (Copy the hop out first:
  // the arena entry may move if emit's control path inserts path state.)
  const NodeId phop = ps->phop;
  ResvMsg fwd = msg;
  fwd.nhop = node_;
  emit(phop, PacketKind::RsvpResv, fwd);
}

void RsvpAgent::on_resv_err(ResvErrMsg msg) {
  if (node_ != msg.sender) {
    emit(msg.sender, PacketKind::RsvpResvErr, msg);
    return;
  }
  confirmed_.erase(msg.flow);
  finish_pending(msg.flow, Status<std::string>::err(msg.reason));
}

void RsvpAgent::on_tear(TearMsg msg) {
  path_state_.erase(msg.flow);
  if (node_ != msg.receiver) {
    remove_on_link(net_.next_hop(node_, msg.receiver), msg.flow);
    emit(msg.receiver, PacketKind::RsvpTear, msg);
  }
}

}  // namespace aqm::net

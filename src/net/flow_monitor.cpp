#include "net/flow_monitor.hpp"

#include <cmath>
#include <string>

#include "obs/telemetry.hpp"

namespace aqm::net {

FlowMonitor::FlowMonitor(Network& net, NodeId node) : net_(net) {
  // Chain in front of any receiver already attached at the node (e.g. an
  // ORB transport): the previous consumer becomes the default downstream,
  // so installing the monitor is a pure tap. set_downstream replaces it.
  downstream_ = net_.swap_receiver(node, [this](Packet&& p) {
    auto& f = flows_[p.flow];
    ++f.count;
    f.bytes += p.size_bytes;
    const double arrival_ms = net_.engine().now().seconds() * 1e3;
    const Duration latency = net_.engine().now() - p.sent_at;
    const double transit_ms = latency.millis();
    f.latency_ms.add(net_.engine().now(), transit_ms);
    if (f.seen) {
      f.interarrival_ms.add(arrival_ms - f.last_arrival_ms);
      const double d = std::abs(transit_ms - f.last_transit_ms);
      f.jitter_ms += (d - f.jitter_ms) / 16.0;
      if (obs::TelemetryHub* th = net_.engine().telemetry()) {
        th->on_jitter(p.flow, f.jitter_ms);
      }
    }
    f.last_arrival_ms = arrival_ms;
    f.last_transit_ms = transit_ms;
    if (f.seen && p.seq > f.next_seq) f.gaps += p.seq - f.next_seq;
    f.next_seq = p.seq + 1;
    f.seen = true;
    if (downstream_) downstream_(std::move(p));
  });
}

const TimeSeries& FlowMonitor::latency_series(FlowId flow) const {
  const PerFlow* f = flows_.find(flow);
  return f == nullptr ? empty_series_ : f->latency_ms;
}

std::uint64_t FlowMonitor::received(FlowId flow) const {
  const PerFlow* f = flows_.find(flow);
  return f == nullptr ? 0 : f->count;
}

std::uint64_t FlowMonitor::received_bytes(FlowId flow) const {
  const PerFlow* f = flows_.find(flow);
  return f == nullptr ? 0 : f->bytes;
}

std::uint64_t FlowMonitor::sequence_gaps(FlowId flow) const {
  const PerFlow* f = flows_.find(flow);
  return f == nullptr ? 0 : f->gaps;
}

std::uint64_t FlowMonitor::dropped(FlowId flow) const { return net_.flow(flow).dropped; }

const RunningStats& FlowMonitor::interarrival_ms(FlowId flow) const {
  const PerFlow* f = flows_.find(flow);
  return f == nullptr ? empty_stats_ : f->interarrival_ms;
}

double FlowMonitor::jitter_ms(FlowId flow) const {
  const PerFlow* f = flows_.find(flow);
  return f == nullptr ? 0.0 : f->jitter_ms;
}

void FlowMonitor::export_metrics(obs::MetricsRegistry& reg,
                                 std::string_view prefix) const {
  flows_.for_each_ordered([&](FlowId flow, const PerFlow& f) {
    const std::string p = std::string(prefix) + ".flow" + std::to_string(flow);
    reg.counter(p + ".received").set(f.count);
    reg.counter(p + ".received_bytes").set(f.bytes);
    reg.counter(p + ".sequence_gaps").set(f.gaps);
    reg.counter(p + ".dropped").set(net_.flow(flow).dropped);
    reg.gauge(p + ".jitter_ms").set(f.jitter_ms);
    reg.stats(p + ".latency_ms").merge(f.latency_ms.stats());
    reg.stats(p + ".interarrival_ms").merge(f.interarrival_ms);
  });
}

void FlowMonitor::clear() { flows_.clear(); }

}  // namespace aqm::net

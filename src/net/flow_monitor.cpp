#include "net/flow_monitor.hpp"

namespace aqm::net {

FlowMonitor::FlowMonitor(Network& net, NodeId node) : net_(net) {
  net_.set_receiver(node, [this](Packet&& p) {
    auto& f = flows_[p.flow];
    ++f.count;
    f.bytes += p.size_bytes;
    const Duration latency = net_.engine().now() - p.sent_at;
    f.latency_ms.add(net_.engine().now(), latency.millis());
    if (f.seen && p.seq > f.next_seq) f.gaps += p.seq - f.next_seq;
    f.next_seq = p.seq + 1;
    f.seen = true;
    if (downstream_) downstream_(std::move(p));
  });
}

const TimeSeries& FlowMonitor::latency_series(FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? empty_series_ : it->second.latency_ms;
}

std::uint64_t FlowMonitor::received(FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.count;
}

std::uint64_t FlowMonitor::received_bytes(FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.bytes;
}

std::uint64_t FlowMonitor::sequence_gaps(FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.gaps;
}

void FlowMonitor::clear() { flows_.clear(); }

}  // namespace aqm::net

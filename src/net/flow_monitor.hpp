// Receiver-side measurement: per-flow latency series and delivery counts.
// Installs itself as the node's receiver, chaining any receiver that was
// already attached as its downstream (so it taps, never replaces); an
// explicit set_downstream overrides that default.
//
// Besides latency, the monitor maintains the receiver-side quality signals
// the paper's streaming experiments care about: inter-arrival statistics,
// an RFC 3550-style smoothed jitter estimate, and (via the Network's
// per-flow counters) drops. export_metrics() dumps everything into a
// MetricsRegistry for the per-trial JSON sidecar.
#pragma once

#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "net/flow_table.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace aqm::net {

class FlowMonitor {
 public:
  FlowMonitor(Network& net, NodeId node);

  /// Forwards every received packet to `fn` after recording stats.
  void set_downstream(Network::ReceiverFn fn) { downstream_ = std::move(fn); }

  [[nodiscard]] const TimeSeries& latency_series(FlowId flow) const;
  [[nodiscard]] std::uint64_t received(FlowId flow) const;
  [[nodiscard]] std::uint64_t received_bytes(FlowId flow) const;
  /// Gaps observed in the flow's sequence numbers (arrival-order estimate).
  [[nodiscard]] std::uint64_t sequence_gaps(FlowId flow) const;
  /// Network-wide drops for the flow (queue/AQM discards at any hop).
  [[nodiscard]] std::uint64_t dropped(FlowId flow) const;
  /// Inter-arrival gap statistics (ms) between consecutive packets.
  [[nodiscard]] const RunningStats& interarrival_ms(FlowId flow) const;
  /// RFC 3550 §6.4.1 smoothed inter-arrival jitter estimate (ms):
  /// J += (|D| - J) / 16, where D is the transit-time delta between
  /// consecutive packets. 0 until two packets have arrived.
  [[nodiscard]] double jitter_ms(FlowId flow) const;

  /// Sorted snapshot of the observed FlowIds (ascending). This is the ONLY
  /// iteration surface the monitor offers: the backing table is hashed, so
  /// consumers that enumerate flows (metrics export, experiment tables) go
  /// through this to stay deterministic and --jobs-invariant.
  [[nodiscard]] std::vector<FlowId> observed_flows() const { return flows_.sorted_ids(); }

  /// Dumps per-flow counters and stats into a registry as
  /// "<prefix>.flow<id>.received", ".dropped", ".latency_ms", etc.
  /// Emission is in ascending FlowId order (via observed_flows()).
  void export_metrics(obs::MetricsRegistry& reg, std::string_view prefix) const;

  void clear();

 private:
  struct PerFlow {
    TimeSeries latency_ms;
    RunningStats interarrival_ms;
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    std::uint64_t gaps = 0;
    std::uint64_t next_seq = 0;
    bool seen = false;
    double jitter_ms = 0.0;
    double last_arrival_ms = 0.0;
    double last_transit_ms = 0.0;
  };

  Network& net_;
  /// Hashed flat table (DESIGN.md §10): the per-packet receiver does one
  /// hash probe instead of an O(log n) tree walk at high fan-in.
  FlowMap<PerFlow> flows_;
  Network::ReceiverFn downstream_;
  TimeSeries empty_series_;
  RunningStats empty_stats_;
};

}  // namespace aqm::net

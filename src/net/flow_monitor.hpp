// Receiver-side measurement: per-flow latency series and delivery counts.
// Installs itself as the node's receiver; an optional downstream callback
// lets application code still observe the packets.
#pragma once

#include <map>

#include "common/stats.hpp"
#include "net/network.hpp"

namespace aqm::net {

class FlowMonitor {
 public:
  FlowMonitor(Network& net, NodeId node);

  /// Forwards every received packet to `fn` after recording stats.
  void set_downstream(Network::ReceiverFn fn) { downstream_ = std::move(fn); }

  [[nodiscard]] const TimeSeries& latency_series(FlowId flow) const;
  [[nodiscard]] std::uint64_t received(FlowId flow) const;
  [[nodiscard]] std::uint64_t received_bytes(FlowId flow) const;
  /// Gaps observed in the flow's sequence numbers (arrival-order estimate).
  [[nodiscard]] std::uint64_t sequence_gaps(FlowId flow) const;

  void clear();

 private:
  struct PerFlow {
    TimeSeries latency_ms;
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    std::uint64_t gaps = 0;
    std::uint64_t next_seq = 0;
    bool seen = false;
  };

  Network& net_;
  std::map<FlowId, PerFlow> flows_;
  Network::ReceiverFn downstream_;
  TimeSeries empty_series_;
};

}  // namespace aqm::net

#include "net/link.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/telemetry.hpp"
#include "sim/partition.hpp"

namespace aqm::net {

Link::Link(sim::Engine& engine, NodeId from, NodeId to, LinkConfig config,
           std::unique_ptr<Queue> queue)
    : engine_(&engine),
      from_(from),
      to_(to),
      config_(config),
      queue_(std::move(queue)),
      loss_rng_(config.loss_seed ^ (static_cast<std::uint64_t>(from) << 32) ^
                static_cast<std::uint64_t>(to) ^ 0xA1B2C3D4E5F60718ULL) {
  assert(config_.bandwidth_bps > 0.0);
  assert(config_.loss_probability >= 0.0 && config_.loss_probability < 1.0);
  assert(queue_ != nullptr);
}

Duration Link::transmission_time(std::uint32_t bytes) const {
  const double s = static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return Duration{static_cast<std::int64_t>(std::ceil(s * 1e9))};
}

obs::TraceRecorder* Link::net_tracer() {
  obs::TraceRecorder* tr = engine_->tracer_for(obs::TraceCategory::Net);
  if (tr != nullptr && trace_bound_ != tr) {
    // First use (or recorder/name changed): bind this link's lane and hand
    // the queue discipline the same lane for its internal decisions.
    if (trace_name_.empty()) {
      trace_name_ = "link:" + std::to_string(from_) + "->" + std::to_string(to_);
    }
    trace_track_ = tr->track(trace_name_);
    qlen_name_ = tr->intern("qlen " + trace_name_);
    queue_->set_tracer(tr, trace_track_);
    trace_bound_ = tr;
  }
  return tr;
}

void Link::trace_qlen(obs::TraceRecorder* tr, TimePoint t) {
  tr->counter(obs::TraceCategory::Net, qlen_name_, trace_track_, t,
              static_cast<double>(queue_->packets()));
}

obs::TelemetryHub* Link::net_telemetry() {
  obs::TelemetryHub* th = engine_->telemetry();
  if (th != telemetry_bound_) {
    queue_->set_telemetry(th);
    telemetry_bound_ = th;
  }
  return th;
}

void Link::send(Packet p) {
  obs::TraceRecorder* tr = net_tracer();
  obs::TelemetryHub* th = net_telemetry();
  const std::uint64_t trace_id = p.trace;
  const double flow = static_cast<double>(p.flow);
  if (!config_.coalesced_events) {
    if (auto rejected = queue_->enqueue(std::move(p), engine_->now())) {
      if (tr != nullptr) {
        tr->instant(obs::TraceCategory::Net, "drop", trace_track_, engine_->now(),
                    rejected->trace, {{"flow", flow}});
      }
      if (on_drop_) on_drop_(*rejected);
      return;
    }
    if (tr != nullptr) {
      tr->instant(obs::TraceCategory::Net, "enqueue", trace_track_, engine_->now(),
                  trace_id, {{"flow", flow}});
      trace_qlen(tr, engine_->now());
    }
    if (th != nullptr) th->on_queue_depth(queue_->packets());
    if (!busy_) legacy_try_transmit();
    return;
  }
  // Catch the virtual transmitter up before the new packet becomes
  // visible: a service decision pending at avail_at_ <= now must see the
  // queue as it was without this arrival, exactly as the legacy
  // end-of-serialization event (which fired at avail_at_) did.
  pump();
  if (auto rejected = queue_->enqueue(std::move(p), engine_->now())) {
    if (tr != nullptr) {
      tr->instant(obs::TraceCategory::Net, "drop", trace_track_, engine_->now(),
                  rejected->trace, {{"flow", flow}});
    }
    if (on_drop_) on_drop_(*rejected);
    return;
  }
  if (tr != nullptr) {
    tr->instant(obs::TraceCategory::Net, "enqueue", trace_track_, engine_->now(),
                trace_id, {{"flow", flow}});
    trace_qlen(tr, engine_->now());
  }
  if (th != nullptr) th->on_queue_depth(queue_->packets());
  // decision_pending_ false implies the transmitter is idle (any committed
  // transmission ending in the future keeps its decision pending), so the
  // arrival itself triggers a decision — the legacy "kick on !busy_".
  if (!decision_pending_) service(engine_->now());
}

/// Replays every service decision the legacy transmitter would have made
/// up to now. A decision is due only at the end of a committed
/// transmission; once a decision finds the queue unservable, no new one
/// arises until an arrival (send) or a conformance retry.
void Link::pump() {
  while (decision_pending_ && avail_at_ <= engine_->now()) {
    decision_pending_ = false;
    service(avail_at_);
  }
}

/// One service decision at the exact (possibly past) instant t. Either
/// commits the next transmission, arms a conformance retry, or finds the
/// queue empty. t <= now() always; between t and now the queue cannot
/// have changed (every mutation path pumps first), so dequeuing with the
/// backdated timestamp reproduces the legacy decision bit for bit —
/// including token-bucket fill levels and RED arrival state.
void Link::service(TimePoint t) {
  if (retry_event_.valid()) {
    engine_->cancel(retry_event_);
    retry_event_ = sim::EventId{};
  }
  const TimePoint now = engine_->now();
  for (;;) {
    if (auto next = queue_->dequeue(t)) {
      start_tx(std::move(*next), t);
      return;
    }
    // Nothing eligible. If something is queued but gated (token bucket),
    // retry when it could conform — inline when that instant has already
    // passed (the legacy retry event would have fired by now).
    const auto delay = queue_->next_ready_delay(t);
    if (!delay || *delay >= Duration::max()) return;
    const TimePoint ready = t + *delay;
    if (ready > now) {
      retry_event_ = engine_->at(ready, [this] {
        retry_event_ = sim::EventId{};
        service(engine_->now());
      });
      return;
    }
    t = ready;
  }
}

/// Commits a transmission starting at t: head leaves the queue at t, the
/// transmitter frees at t + tx, the receiver has the packet a propagation
/// delay later. Schedules the one externally visible event (delivery or
/// corruption drop), which doubles as the catch-up point keeping the
/// service chain alive.
void Link::start_tx(Packet p, TimePoint t) {
  const Duration tx = transmission_time(p.size_bytes);
  busy_ns_ += tx.ns();
  ++tx_packets_;
  tx_bytes_ += p.size_bytes;
  avail_at_ = t + tx;
  decision_pending_ = true;
  if (obs::TraceRecorder* tr = net_tracer()) {
    tr->complete(obs::TraceCategory::Net, "tx", trace_track_, t, tx, p.trace,
                 {{"bytes", static_cast<double>(p.size_bytes)},
                  {"flow", static_cast<double>(p.flow)}});
    trace_qlen(tr, t);
  }
  // The loss draw moves from the end of serialization to its commit; draws
  // still happen exactly once per transmission in transmission order, so
  // the (seed, packet) mapping matches the legacy sequence bit for bit.
  if (config_.loss_probability > 0.0 && loss_rng_.bernoulli(config_.loss_probability)) {
    // A backdated commit can place tx end in the past; clamp the event to
    // now (the drop hook only feeds counters, never timing).
    engine_->at(std::max(avail_at_, engine_->now()), [this, p = std::move(p)]() mutable {
      ++corrupted_;
      if (obs::TraceRecorder* tr = net_tracer()) {
        tr->instant(obs::TraceCategory::Net, "corrupt", trace_track_, engine_->now(),
                    p.trace, {{"flow", static_cast<double>(p.flow)}});
      }
      if (on_drop_) on_drop_(p);
      pump();
    });
  } else if (remote_world_ == nullptr) {
    engine_->at(avail_at_ + config_.propagation, [this, p = std::move(p)]() mutable {
      pump();
      if (obs::TraceRecorder* tr = net_tracer()) {
        tr->instant(obs::TraceCategory::Net, "deliver", trace_track_, engine_->now(),
                    p.trace, {{"flow", static_cast<double>(p.flow)}});
      }
      if (deliver_) deliver_(std::move(p));
    });
  } else {
    // Boundary link: the delivery event moves to the destination
    // partition's engine, so the local service chain needs its own
    // catch-up point — a tx-end event at avail_at_, exactly the legacy
    // transmitter's end-of-serialization event. That event also
    // guarantees no boundary decision is ever replayed late (pump runs
    // the pending decision at precisely avail_at_), so every boundary
    // commit happens at the current instant and the arrival below is
    // always >= one full propagation past it: the conservative-lookahead
    // contract of DESIGN.md §14. (The corruption branch above already
    // fires locally at avail_at_ and pumps, covering the same role.)
    engine_->at(avail_at_, [this] { pump(); });
    remote_deliver(std::move(p), avail_at_ + config_.propagation);
  }
}

void Link::remote_deliver(Packet p, TimePoint arrival) {
  // The handler runs on the destination partition's thread; tracing is a
  // partition-0 affair by contract (DESIGN.md §14), so no trace instant
  // is emitted here — the tx event above already recorded the hop.
  remote_world_->post(remote_partition_, arrival, [this, p = std::move(p)]() mutable {
    if (deliver_) deliver_(std::move(p));
  });
}

void Link::legacy_try_transmit() {
  assert(!busy_);
  if (retry_event_.valid()) {
    engine_->cancel(retry_event_);
    retry_event_ = sim::EventId{};
  }
  auto next = queue_->dequeue(engine_->now());
  if (!next) {
    // Nothing eligible. If something is queued but gated (token bucket),
    // poll again when it could conform.
    const auto delay = queue_->next_ready_delay(engine_->now());
    if (delay && *delay < Duration::max()) {
      retry_event_ = engine_->after(*delay, [this] {
        retry_event_ = sim::EventId{};
        if (!busy_) legacy_try_transmit();
      });
    }
    return;
  }

  busy_ = true;
  const Duration tx = transmission_time(next->size_bytes);
  busy_ns_ += tx.ns();
  ++tx_packets_;
  tx_bytes_ += next->size_bytes;
  if (obs::TraceRecorder* tr = net_tracer()) {
    tr->complete(obs::TraceCategory::Net, "tx", trace_track_, engine_->now(), tx,
                 next->trace, {{"bytes", static_cast<double>(next->size_bytes)},
                               {"flow", static_cast<double>(next->flow)}});
    trace_qlen(tr, engine_->now());
  }

  // Store-and-forward: the head of the packet leaves now; the receiver has
  // it fully after transmission + propagation.
  engine_->after(tx, [this, p = std::move(*next)]() mutable {
    busy_ = false;
    // Channel corruption (noisy wireless links): the packet occupied the
    // transmitter but never arrives intact.
    if (config_.loss_probability > 0.0 && loss_rng_.bernoulli(config_.loss_probability)) {
      ++corrupted_;
      if (obs::TraceRecorder* tr = net_tracer()) {
        tr->instant(obs::TraceCategory::Net, "corrupt", trace_track_, engine_->now(),
                    p.trace, {{"flow", static_cast<double>(p.flow)}});
      }
      if (on_drop_) on_drop_(p);
    } else {
      engine_->after(config_.propagation, [this, p = std::move(p)]() mutable {
        if (obs::TraceRecorder* tr = net_tracer()) {
          tr->instant(obs::TraceCategory::Net, "deliver", trace_track_, engine_->now(),
                      p.trace, {{"flow", static_cast<double>(p.flow)}});
        }
        if (deliver_) deliver_(std::move(p));
      });
    }
    legacy_try_transmit();
  });
}

double Link::utilization() const {
  const std::int64_t elapsed = engine_->now().ns();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(busy_ns_) / static_cast<double>(elapsed);
}

}  // namespace aqm::net

#include "net/link.hpp"

#include <cassert>
#include <cmath>

namespace aqm::net {

Link::Link(sim::Engine& engine, NodeId from, NodeId to, LinkConfig config,
           std::unique_ptr<Queue> queue)
    : engine_(engine),
      from_(from),
      to_(to),
      config_(config),
      queue_(std::move(queue)),
      loss_rng_(config.loss_seed ^ (static_cast<std::uint64_t>(from) << 32) ^
                static_cast<std::uint64_t>(to) ^ 0xA1B2C3D4E5F60718ULL) {
  assert(config_.bandwidth_bps > 0.0);
  assert(config_.loss_probability >= 0.0 && config_.loss_probability < 1.0);
  assert(queue_ != nullptr);
}

Duration Link::transmission_time(std::uint32_t bytes) const {
  const double s = static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return Duration{static_cast<std::int64_t>(std::ceil(s * 1e9))};
}

void Link::send(Packet p) {
  if (auto rejected = queue_->enqueue(std::move(p), engine_.now())) {
    if (on_drop_) on_drop_(*rejected);
    return;
  }
  if (!busy_) try_transmit();
}

void Link::try_transmit() {
  assert(!busy_);
  if (retry_event_.valid()) {
    engine_.cancel(retry_event_);
    retry_event_ = sim::EventId{};
  }
  auto next = queue_->dequeue(engine_.now());
  if (!next) {
    // Nothing eligible. If something is queued but gated (token bucket),
    // poll again when it could conform.
    const auto delay = queue_->next_ready_delay(engine_.now());
    if (delay && *delay < Duration::max()) {
      retry_event_ = engine_.after(*delay, [this] {
        retry_event_ = sim::EventId{};
        if (!busy_) try_transmit();
      });
    }
    return;
  }

  busy_ = true;
  const Duration tx = transmission_time(next->size_bytes);
  busy_ns_ += tx.ns();
  ++tx_packets_;
  tx_bytes_ += next->size_bytes;

  // Store-and-forward: the head of the packet leaves now; the receiver has
  // it fully after transmission + propagation.
  engine_.after(tx, [this, p = std::move(*next)]() mutable {
    busy_ = false;
    // Channel corruption (noisy wireless links): the packet occupied the
    // transmitter but never arrives intact.
    if (config_.loss_probability > 0.0 && loss_rng_.bernoulli(config_.loss_probability)) {
      ++corrupted_;
      if (on_drop_) on_drop_(p);
    } else {
      engine_.after(config_.propagation, [this, p = std::move(p)]() mutable {
        if (deliver_) deliver_(std::move(p));
      });
    }
    try_transmit();
  });
}

double Link::utilization() const {
  const std::int64_t elapsed = engine_.now().ns();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(busy_ns_) / static_cast<double>(elapsed);
}

}  // namespace aqm::net

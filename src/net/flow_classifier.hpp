// Flow classification hook for the middleware layers above the network.
//
// The ORB's invocation pipeline asks an installed classifier which network
// flow an outbound GIOP message belongs to, right before it hands the bytes
// to the transport. This is where RSVP/token-bucket classification plugs
// in: a reservation manager can steer a binding's traffic into its reserved
// flow (so the IntServ queues and token-bucket policers see it) without the
// ORB or the application hard-coding flow ids per call site.
#pragma once

#include "net/dscp.hpp"
#include "net/packet.hpp"

namespace aqm::net {

class FlowClassifier {
 public:
  virtual ~FlowClassifier() = default;

  /// Maps an outbound message onto a flow. `requested` is the flow id the
  /// caller asked for (binding/stub flow, kNoFlow when unset); classifiers
  /// may honor, refine, or override it.
  [[nodiscard]] virtual FlowId classify(NodeId src, NodeId dst, Dscp dscp,
                                        FlowId requested) = 0;
};

}  // namespace aqm::net

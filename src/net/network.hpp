// Topology container and forwarding plane.
//
// A Network is a set of nodes (hosts and routers are structurally identical;
// hosts are simply nodes with a registered receiver callback) connected by
// unidirectional Links. Forwarding uses static shortest-path (hop count)
// routes recomputed lazily after topology changes.
//
// Control packets (RSVP signaling) are intercepted at every node that has a
// registered control handler, mirroring RSVP's hop-by-hop router-alert
// processing; data packets are forwarded transparently through routers and
// delivered to the destination node's receiver.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "net/flow_table.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/partition.hpp"

namespace aqm::obs {
class TelemetryHub;
}

namespace aqm::net {

/// Per-flow delivery accounting, maintained by the Network.
struct FlowCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t delivered_bytes = 0;
};

class Network {
 public:
  using ReceiverFn = std::function<void(Packet&&)>;
  /// Control handler: invoked with (node where the packet arrived, packet).
  /// The handler owns forwarding of control packets.
  using ControlFn = std::function<void(NodeId, Packet&&)>;

  explicit Network(sim::Engine& engine);

  /// World mode: the network may span the partitions of a sim::World
  /// (DESIGN.md §14). Nodes are assigned to partitions after topology
  /// construction (set_node_partition / auto_partition); at world start
  /// the network re-points every link at its owner partition's engine,
  /// marks partition-crossing links as boundary links and installs the
  /// cut's minimum propagation delay as the world's conservative
  /// lookahead. With world.partitions() == 1 this is behaviourally
  /// identical to the Engine constructor.
  explicit Network(sim::World& world);

  // --- topology ---------------------------------------------------------------

  NodeId add_node(std::string name);

  /// Adds a unidirectional link. Queue defaults to a drop-tail FIFO of 1000.
  Link& add_link(NodeId from, NodeId to, LinkConfig config,
                 std::unique_ptr<Queue> queue = nullptr);

  /// Adds both directions with identical configs and independent queues
  /// created by the factory (drop-tail 1000 if none given).
  void add_duplex_link(NodeId a, NodeId b, LinkConfig config,
                       const std::function<std::unique_ptr<Queue>()>& make_queue = nullptr);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] Link* link_between(NodeId from, NodeId to);
  [[nodiscard]] const Link* link_between(NodeId from, NodeId to) const;

  // --- attachment --------------------------------------------------------------

  void set_receiver(NodeId node, ReceiverFn fn);
  /// Installs a receiver and returns the previous one (may be null), so
  /// taps like FlowMonitor can chain in front of an existing consumer
  /// instead of silently replacing it.
  ReceiverFn swap_receiver(NodeId node, ReceiverFn fn);
  void set_control_handler(NodeId node, ControlFn fn);

  // --- forwarding ---------------------------------------------------------------

  /// Injects a packet at `from`. Stamps src/sent_at, routes hop by hop.
  void send(NodeId from, Packet p);

  /// Next hop on the route from -> dst; kInvalidNode if unreachable.
  [[nodiscard]] NodeId next_hop(NodeId from, NodeId dst) const;

  /// Full node path from -> dst (inclusive); empty if unreachable.
  [[nodiscard]] std::vector<NodeId> path(NodeId from, NodeId dst) const;

  // --- accounting ----------------------------------------------------------------

  [[nodiscard]] const FlowCounters& flow(FlowId id) const;
  [[nodiscard]] const FlowCounters& totals() const;

  /// Dumps totals and per-flow delivery counters into a registry as
  /// "<prefix>.total.sent", "<prefix>.flow<id>.dropped", etc.
  void export_metrics(obs::MetricsRegistry& reg, std::string_view prefix) const;

  [[nodiscard]] sim::Engine& engine() { return engine_; }

  // --- partitioning (world mode only) ------------------------------------------

  /// Pins a node to a partition. Call between topology construction and
  /// world.run(); partition-0 is the default for every node.
  void set_node_partition(NodeId node, unsigned partition);
  [[nodiscard]] unsigned node_partition(NodeId node) const;
  /// The engine that drives a node's events (partition-owned in world
  /// mode, the single engine otherwise).
  [[nodiscard]] sim::Engine& engine_of(NodeId node);

  /// Deterministic topology-cut heuristic over world.partitions() parts:
  /// contracts each branch hanging off the highest-degree node into one
  /// unit (keeping zero-propagation edges inside a unit, since a cut
  /// needs positive lookahead), pins the root to partition 0, and
  /// greedily assigns units heaviest-first to the lightest partition.
  void auto_partition();

  /// World mode: record delivery/drop telemetry observations into
  /// per-partition shards instead of calling the engine's hub, so a
  /// partitioned run can feed ONE hub deterministically after the fact.
  void enable_telemetry_log();
  /// Replays the logged observations into `hub`, merged across partition
  /// shards in (time, partition, sequence) order. Call after world.run();
  /// the caller then hub.finalize()s at end_time() and reads the report.
  void replay_telemetry(obs::TelemetryHub& hub) const;
  /// Latest engine clock across partitions (the world's end of time).
  [[nodiscard]] TimePoint end_time() const;

 private:
  struct Node {
    std::string name;
    ReceiverFn receiver;
    ControlFn control;
  };

  void deliver_local(NodeId node, Packet&& p);
  void forward(NodeId from, Packet&& p);
  void ensure_routes() const;
  void on_drop(const Packet& p);
  /// World start hook: routes, per-link engine rebinding, boundary-link
  /// wiring and the lookahead computation (throws on a zero-lookahead cut).
  void finalize_partitions();

  /// Directed-edge key for the hashed link table.
  [[nodiscard]] static std::uint64_t link_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint32_t>(to);
  }

  /// One delivery/drop observation, recorded when the telemetry log is
  /// enabled. Per-shard streams are time-sorted by construction (each
  /// partition's clock is monotonic), so replay is a k-way merge.
  struct TelEvent {
    std::int64_t t_ns;
    FlowId flow;
    std::uint64_t aux;  // delivered bytes, or the drop's trace id
    bool drop;
  };
  /// Per-partition slice of the forwarding-plane state that packet events
  /// mutate. Exactly one worker thread writes each shard (the owning
  /// partition's); readers merge across shards post-run. Legacy mode has
  /// a single shard, making every accessor below the old code path.
  struct Shard {
    FlowMap<FlowCounters> flows;
    FlowCounters totals;
    std::vector<TelEvent> tel;
  };

  [[nodiscard]] Shard& cur_shard() const {
    return shards_[world_ != nullptr ? sim::World::current_partition() : 0];
  }
  [[nodiscard]] sim::Engine& cur_engine() const {
    return world_ != nullptr ? world_->engine(sim::World::current_partition()) : engine_;
  }

  sim::Engine& engine_;
  sim::World* world_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<unsigned> node_partition_;  // parallel to nodes_; all 0 in legacy mode
  /// Hashed adjacency: (from,to) key -> link. Never iterated for anything
  /// order-sensitive — ensure_routes() sorts the per-node neighbor lists it
  /// derives, so routes stay identical to the old ordered-map build.
  std::unordered_map<std::uint64_t, std::unique_ptr<Link>> links_;

  // next_hop_[from * n + dst]; kInvalidNode when unreachable. Rebuilt lazily.
  mutable std::vector<NodeId> next_hop_table_;
  mutable bool routes_dirty_ = true;

  /// Per-flow counters in flat indexed tables (DESIGN.md §10), one shard
  /// per partition (§14); export merges shards and goes through
  /// for_each_ordered so metric lines stay ascending-FlowId.
  mutable std::vector<Shard> shards_;
  mutable FlowCounters merged_scratch_;  // flow()/totals() return slot in world mode
  FlowCounters no_counters_{};
  bool telemetry_log_ = false;
};

}  // namespace aqm::net

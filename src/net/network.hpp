// Topology container and forwarding plane.
//
// A Network is a set of nodes (hosts and routers are structurally identical;
// hosts are simply nodes with a registered receiver callback) connected by
// unidirectional Links. Forwarding uses static shortest-path (hop count)
// routes recomputed lazily after topology changes.
//
// Control packets (RSVP signaling) are intercepted at every node that has a
// registered control handler, mirroring RSVP's hop-by-hop router-alert
// processing; data packets are forwarded transparently through routers and
// delivered to the destination node's receiver.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "net/flow_table.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace aqm::net {

/// Per-flow delivery accounting, maintained by the Network.
struct FlowCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t delivered_bytes = 0;
};

class Network {
 public:
  using ReceiverFn = std::function<void(Packet&&)>;
  /// Control handler: invoked with (node where the packet arrived, packet).
  /// The handler owns forwarding of control packets.
  using ControlFn = std::function<void(NodeId, Packet&&)>;

  explicit Network(sim::Engine& engine);

  // --- topology ---------------------------------------------------------------

  NodeId add_node(std::string name);

  /// Adds a unidirectional link. Queue defaults to a drop-tail FIFO of 1000.
  Link& add_link(NodeId from, NodeId to, LinkConfig config,
                 std::unique_ptr<Queue> queue = nullptr);

  /// Adds both directions with identical configs and independent queues
  /// created by the factory (drop-tail 1000 if none given).
  void add_duplex_link(NodeId a, NodeId b, LinkConfig config,
                       const std::function<std::unique_ptr<Queue>()>& make_queue = nullptr);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] Link* link_between(NodeId from, NodeId to);
  [[nodiscard]] const Link* link_between(NodeId from, NodeId to) const;

  // --- attachment --------------------------------------------------------------

  void set_receiver(NodeId node, ReceiverFn fn);
  /// Installs a receiver and returns the previous one (may be null), so
  /// taps like FlowMonitor can chain in front of an existing consumer
  /// instead of silently replacing it.
  ReceiverFn swap_receiver(NodeId node, ReceiverFn fn);
  void set_control_handler(NodeId node, ControlFn fn);

  // --- forwarding ---------------------------------------------------------------

  /// Injects a packet at `from`. Stamps src/sent_at, routes hop by hop.
  void send(NodeId from, Packet p);

  /// Next hop on the route from -> dst; kInvalidNode if unreachable.
  [[nodiscard]] NodeId next_hop(NodeId from, NodeId dst) const;

  /// Full node path from -> dst (inclusive); empty if unreachable.
  [[nodiscard]] std::vector<NodeId> path(NodeId from, NodeId dst) const;

  // --- accounting ----------------------------------------------------------------

  [[nodiscard]] const FlowCounters& flow(FlowId id) const;
  [[nodiscard]] const FlowCounters& totals() const { return totals_; }

  /// Dumps totals and per-flow delivery counters into a registry as
  /// "<prefix>.total.sent", "<prefix>.flow<id>.dropped", etc.
  void export_metrics(obs::MetricsRegistry& reg, std::string_view prefix) const;

  [[nodiscard]] sim::Engine& engine() { return engine_; }

 private:
  struct Node {
    std::string name;
    ReceiverFn receiver;
    ControlFn control;
  };

  void deliver_local(NodeId node, Packet&& p);
  void forward(NodeId from, Packet&& p);
  void ensure_routes() const;
  void on_drop(const Packet& p);

  /// Directed-edge key for the hashed link table.
  [[nodiscard]] static std::uint64_t link_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint32_t>(to);
  }

  sim::Engine& engine_;
  std::vector<Node> nodes_;
  /// Hashed adjacency: (from,to) key -> link. Never iterated for anything
  /// order-sensitive — ensure_routes() sorts the per-node neighbor lists it
  /// derives, so routes stay identical to the old ordered-map build.
  std::unordered_map<std::uint64_t, std::unique_ptr<Link>> links_;

  // next_hop_[from * n + dst]; kInvalidNode when unreachable. Rebuilt lazily.
  mutable std::vector<NodeId> next_hop_table_;
  mutable bool routes_dirty_ = true;

  /// Per-flow counters in a flat indexed table (DESIGN.md §10); export goes
  /// through for_each_ordered so metric lines stay ascending-FlowId.
  mutable FlowMap<FlowCounters> flows_;
  FlowCounters totals_;
  FlowCounters no_counters_{};
};

}  // namespace aqm::net

#include "net/drr_queue.hpp"

#include <cassert>

namespace aqm::net {

DrrQueue::DrrQueue(DrrConfig config) : config_(config) {
  assert(config_.class_capacity > 0);
  assert(config_.quantum_bytes > 0);
  for (const auto w : config_.weights) assert(w > 0);
}

std::optional<Packet> DrrQueue::enqueue(Packet p, TimePoint /*now*/) {
  const auto cls = static_cast<std::size_t>(classify(p.dscp));
  ClassState& state = classes_[cls];
  if (state.q.size() >= config_.class_capacity) {
    count_drop(p);
    return p;
  }
  count_enqueue(p);
  bytes_ += p.size_bytes;
  state.q.push_back(std::move(p));
  if (!state.in_active_list) {
    state.in_active_list = true;
    state.deficit = 0;  // credit granted when its turn comes
    active_.push_back(cls);
  }
  return std::nullopt;
}

std::optional<Packet> DrrQueue::dequeue(TimePoint /*now*/) {
  // Standard DRR adapted to a pull-one-packet link: the front class gets
  // exactly one quantum grant per visit; it keeps the front spot while its
  // deficit covers head packets (served across successive dequeue calls),
  // then rotates with its residual deficit. The loop terminates: every
  // iteration either serves a packet or rotates an already-granted class,
  // and each class is rotated at most once between grants.
  // Termination: each rotation grants a fresh quantum, so every active
  // class's deficit grows monotonically until its head packet is covered
  // (ceil(max_packet / (quantum * weight)) rounds at worst).
  std::size_t rotations = 0;
  const std::size_t rotation_cap = 100'000;  // sanity bound
  while (!active_.empty() && rotations < rotation_cap) {
    const std::size_t cls = active_.front();
    ClassState& state = classes_[cls];
    assert(!state.q.empty());
    if (!state.granted_this_round) {
      state.deficit += static_cast<std::int64_t>(config_.quantum_bytes) *
                       config_.weights[cls];
      state.granted_this_round = true;
    }
    if (state.deficit >= static_cast<std::int64_t>(state.q.front().size_bytes)) {
      Packet p = std::move(state.q.front());
      state.q.pop_front();
      state.deficit -= p.size_bytes;
      state.bytes_sent += p.size_bytes;
      bytes_ -= p.size_bytes;
      count_dequeue();
      if (state.q.empty()) {
        state.in_active_list = false;
        state.granted_this_round = false;
        state.deficit = 0;  // an idle class must not hoard credit
        active_.pop_front();
      }
      return p;
    }
    // Deficit exhausted for this round: rotate with the residual credit.
    state.granted_this_round = false;
    active_.pop_front();
    active_.push_back(cls);
    ++rotations;
  }
  return std::nullopt;
}

std::optional<Duration> DrrQueue::next_ready_delay(TimePoint /*now*/) const {
  return std::nullopt;  // backlogged packets are always eventually eligible
}

std::size_t DrrQueue::packets() const {
  std::size_t n = 0;
  for (const auto& c : classes_) n += c.q.size();
  return n;
}

}  // namespace aqm::net

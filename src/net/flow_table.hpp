// Flat per-flow state storage for million-flow worlds (DESIGN.md §10).
//
// FlowMap<T> replaces the ordered std::map<FlowId, T> tables that used to
// back the network layer's per-flow state. Lookup is a hashed FlowId ->
// dense-slot index; the T values live contiguously in a slot arena that is
// recycled through a free list, so steady-state insert/erase churn performs
// no per-entry heap allocation and the per-packet hot path costs one hash
// probe instead of an O(log n) tree walk.
//
// Determinism rule: hash-table iteration order is unspecified, so FlowMap
// never exposes it. Any consumer that iterates (metrics export, admission
// re-sums, service scans) must go through sorted_ids()/for_each_ordered(),
// which materialize the ascending-FlowId order the old std::map gave for
// free. That keeps every emitted byte `--jobs`-invariant and identical to
// the legacy containers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"

namespace aqm::net {

template <typename T>
class FlowMap {
 public:
  /// Returns the entry for `id`, default-constructing it on first use.
  /// References are invalidated by subsequent inserts (slot arena growth).
  T& operator[](FlowId id) {
    const auto [it, inserted] = index_.try_emplace(id, 0);
    if (inserted) {
      if (free_.empty()) {
        it->second = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
      } else {
        it->second = free_.back();
        free_.pop_back();
        slots_[it->second] = T{};
      }
    }
    return slots_[it->second];
  }

  [[nodiscard]] T* find(FlowId id) {
    const auto it = index_.find(id);
    return it == index_.end() ? nullptr : &slots_[it->second];
  }
  [[nodiscard]] const T* find(FlowId id) const {
    const auto it = index_.find(id);
    return it == index_.end() ? nullptr : &slots_[it->second];
  }
  [[nodiscard]] bool contains(FlowId id) const { return index_.count(id) > 0; }

  /// Releases the entry (its slot is recycled; the stored value is reset
  /// immediately so owned resources are freed now, not at reuse time).
  bool erase(FlowId id) {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    slots_[it->second] = T{};
    free_.push_back(it->second);
    index_.erase(it);
    return true;
  }

  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] bool empty() const { return index_.empty(); }

  void clear() {
    index_.clear();
    slots_.clear();
    free_.clear();
  }

  void reserve(std::size_t n) {
    index_.reserve(n);
    slots_.reserve(n);
  }

  /// Sorted snapshot of the live FlowIds (ascending) — the deterministic
  /// iteration order every emitter must use.
  [[nodiscard]] std::vector<FlowId> sorted_ids() const {
    std::vector<FlowId> ids;
    ids.reserve(index_.size());
    for (const auto& [id, slot] : index_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  /// Calls fn(id, value) for every entry in ascending FlowId order.
  template <typename Fn>
  void for_each_ordered(Fn&& fn) const {
    for (const FlowId id : sorted_ids()) fn(id, slots_[index_.at(id)]);
  }

 private:
  std::unordered_map<FlowId, std::uint32_t> index_;
  std::vector<T> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace aqm::net

#include "net/queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace aqm::net {

// --- DropTailQueue -----------------------------------------------------------

DropTailQueue::DropTailQueue(std::size_t capacity_packets) : capacity_(capacity_packets) {
  assert(capacity_ > 0);
}

std::optional<Packet> DropTailQueue::enqueue(Packet p, TimePoint /*now*/) {
  if (q_.size() >= capacity_) {
    count_drop(p);
    return p;
  }
  count_enqueue(p);
  bytes_ += p.size_bytes;
  q_.push_back(std::move(p));
  return std::nullopt;
}

std::optional<Packet> DropTailQueue::dequeue(TimePoint /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  count_dequeue();
  return p;
}

std::optional<Duration> DropTailQueue::next_ready_delay(TimePoint /*now*/) const {
  return std::nullopt;  // FIFO: packets are always eligible, so never "not ready"
}

// --- DiffServQueue -----------------------------------------------------------

DiffServQueue::DiffServQueue(std::size_t class_capacity) {
  capacities_.fill(class_capacity);
  assert(class_capacity > 0);
}

DiffServQueue::DiffServQueue(const std::array<std::size_t, kPhbClassCount>& capacities)
    : capacities_(capacities) {}

std::optional<Packet> DiffServQueue::enqueue(Packet p, TimePoint /*now*/) {
  const auto cls = static_cast<std::size_t>(classify(p.dscp));
  if (classes_[cls].size() >= capacities_[cls]) {
    count_drop(p);
    return p;
  }
  count_enqueue(p);
  bytes_ += p.size_bytes;
  ++packets_;
  classes_[cls].push_back(std::move(p));
  occupied_classes_ |= 1u << cls;
  return std::nullopt;
}

std::optional<Packet> DiffServQueue::dequeue(TimePoint /*now*/) {
  if (occupied_classes_ == 0) return std::nullopt;
  // Lowest set bit == highest-priority occupied class: identical pick to
  // the class-order scan, without visiting the empty classes above it.
  const auto cls = static_cast<std::size_t>(std::countr_zero(occupied_classes_));
  auto& q = classes_[cls];
  Packet p = std::move(q.front());
  q.pop_front();
  if (q.empty()) occupied_classes_ &= ~(1u << cls);
  bytes_ -= p.size_bytes;
  --packets_;
  count_dequeue();
  return p;
}

std::optional<Duration> DiffServQueue::next_ready_delay(TimePoint /*now*/) const {
  return std::nullopt;  // strict priority: a queued packet is always eligible
}

// --- IntServQueue ------------------------------------------------------------

IntServQueue::IntServQueue(Config config) : config_(config) {
  assert(config_.best_effort_capacity > 0);
  assert(config_.flow_capacity > 0);
  assert(config_.control_capacity > 0);
  if (config_.parent_rate_bps > 0.0) {
    parent_.emplace(config_.parent_rate_bps, config_.parent_bucket_bytes);
  }
}

bool IntServQueue::policer_consume(TokenBucket& child, std::uint32_t bytes,
                                   TimePoint now) {
  if (!parent_) return child.consume(bytes, now);
  return hierarchical_consume(*parent_, child, bytes, now);
}

Duration IntServQueue::policer_wait(const TokenBucket& child, std::uint32_t bytes,
                                    TimePoint now) const {
  if (!parent_) return child.time_until_conforms(bytes, now);
  return hierarchical_time_until_conforms(*parent_, child, bytes, now);
}

bool IntServQueue::shape_unconformable(const TokenBucket& child,
                                       std::uint32_t bytes) const {
  if (bytes > child.depth_bytes()) return true;
  return parent_ && bytes > parent_->depth_bytes();
}

void IntServQueue::trace_demote(const Packet& p, TimePoint now) {
  if (obs::TraceRecorder* tr = tracer()) {
    tr->instant(obs::TraceCategory::Net, "intserv.demote", trace_track(), now,
                p.trace, {{"flow", static_cast<double>(p.flow)},
                          {"bytes", static_cast<double>(p.size_bytes)}});
  }
}

// --- indexed flow table: pool + per-flow FIFO helpers ------------------------

std::uint32_t IntServQueue::pool_alloc(Packet&& p) {
  if (pool_free_ != kNil) {
    const std::uint32_t node = pool_free_;
    pool_free_ = pool_[node].next;
    pool_[node].pkt = std::move(p);
    pool_[node].next = kNil;
    return node;
  }
  const auto node = static_cast<std::uint32_t>(pool_.size());
  pool_.push_back(PacketNode{std::move(p), kNil});
  return node;
}

Packet IntServQueue::pool_release(std::uint32_t node) {
  Packet p = std::move(pool_[node].pkt);
  pool_[node].pkt = Packet{};  // free any external payload buffer now
  pool_[node].next = pool_free_;
  pool_free_ = node;
  return p;
}

void IntServQueue::flow_push(std::uint32_t slot, FlowId id, Packet&& p) {
  const std::uint32_t node = pool_alloc(std::move(p));
  FlowFifo& fifo = flow_fifo_[slot];
  if (fifo.tail == kNil) {
    fifo.head = fifo.tail = node;
    flow_ready_.emplace(id, slot);
  } else {
    pool_[fifo.tail].next = node;
    fifo.tail = node;
  }
  ++fifo.len;
}

Packet IntServQueue::flow_pop(std::uint32_t slot, FlowId id) {
  FlowFifo& fifo = flow_fifo_[slot];
  const std::uint32_t node = fifo.head;
  fifo.head = pool_[node].next;
  if (fifo.head == kNil) {
    fifo.tail = kNil;
    flow_ready_.erase({id, slot});
  }
  --fifo.len;
  return pool_release(node);
}

// --- reservation plane -------------------------------------------------------

void IntServQueue::install_reservation(FlowId flow, double rate_bps,
                                       std::uint32_t bucket_bytes, TimePoint now) {
  assert(flow != kNoFlow);
  if (config_.legacy_flow_map) {
    // Replace any existing reservation for the flow (RSVP refresh/modify);
    // queued packets of the old state are preserved.
    const auto it = flows_.find(flow);
    if (it != flows_.end()) {
      std::deque<Packet> pending = std::move(it->second.q);
      for (const auto& p : pending) bytes_ -= p.size_bytes;  // re-added below
      flows_.erase(it);
      auto [nit, inserted] =
          flows_.emplace(flow, FlowState{TokenBucket{rate_bps, bucket_bytes, now}, {}});
      assert(inserted);
      for (auto& p : pending) {
        bytes_ += p.size_bytes;
        nit->second.q.push_back(std::move(p));
      }
      return;
    }
    flows_.emplace(flow, FlowState{TokenBucket{rate_bps, bucket_bytes, now}, {}});
    return;
  }
  const auto it = slot_of_.find(flow);
  if (it != slot_of_.end()) {
    // Modify: swap in the new bucket, keep the queued packets. The rate
    // changed in the middle of id order, so the running sum goes stale.
    flow_bucket_[it->second] = TokenBucket{rate_bps, bucket_bytes, now};
    reserved_dirty_ = true;
    return;
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    flow_bucket_[slot] = TokenBucket{rate_bps, bucket_bytes, now};
    flow_fifo_[slot] = FlowFifo{};
  } else {
    slot = static_cast<std::uint32_t>(flow_bucket_.size());
    flow_bucket_.emplace_back(rate_bps, bucket_bytes, now);
    flow_fifo_.emplace_back();
  }
  slot_of_.emplace(flow, slot);
  // Incremental sum, PR-5 idiom: an append at the end of id order extends
  // the running value exactly as the legacy scan would; anything else is
  // recomputed lazily in id order, so the result stays bit-identical.
  if (!reserved_dirty_) {
    if (flow_order_.empty() || flow > *flow_order_.rbegin()) {
      reserved_sum_ += rate_bps;
    } else {
      reserved_dirty_ = true;
    }
  }
  flow_order_.insert(flow);
}

bool IntServQueue::update_reservation(FlowId flow, double rate_bps,
                                      std::uint32_t bucket_bytes, TimePoint now) {
  assert(flow != kNoFlow);
  if (config_.legacy_flow_map) {
    const auto it = flows_.find(flow);
    if (it == flows_.end()) return false;
    it->second.bucket.reconfigure(rate_bps, bucket_bytes, now);
    return true;
  }
  const auto it = slot_of_.find(flow);
  if (it == slot_of_.end()) return false;
  flow_bucket_[it->second].reconfigure(rate_bps, bucket_bytes, now);
  // The rate changed in the middle of id order: the running sum goes stale
  // and is recomputed lazily in id order (bit-identical to the legacy scan).
  reserved_dirty_ = true;
  return true;
}

void IntServQueue::set_parent_rate(double rate_bps, std::uint32_t bucket_bytes,
                                   TimePoint now) {
  config_.parent_rate_bps = rate_bps;
  config_.parent_bucket_bytes = bucket_bytes;
  if (rate_bps <= 0.0) {
    parent_.reset();
    return;
  }
  if (parent_) {
    parent_->reconfigure(rate_bps, bucket_bytes, now);
    return;
  }
  parent_.emplace(rate_bps, bucket_bytes, now);
}

void IntServQueue::remove_reservation(FlowId flow) {
  if (config_.legacy_flow_map) {
    const auto it = flows_.find(flow);
    if (it == flows_.end()) return;
    // Queued packets of the torn-down flow demote to best effort (clamped
    // by the best-effort capacity).
    for (auto& p : it->second.q) {
      if (best_effort_.size() >= config_.best_effort_capacity) {
        bytes_ -= p.size_bytes;
        --packets_;
        count_drop(p);
        continue;
      }
      best_effort_.push_back(std::move(p));
    }
    flows_.erase(it);
    return;
  }
  const auto it = slot_of_.find(flow);
  if (it == slot_of_.end()) return;
  const std::uint32_t slot = it->second;
  while (flow_fifo_[slot].len > 0) {
    Packet p = flow_pop(slot, flow);
    if (best_effort_.size() >= config_.best_effort_capacity) {
      bytes_ -= p.size_bytes;
      --packets_;
      count_drop(p);
      continue;
    }
    best_effort_.push_back(std::move(p));
  }
  free_slots_.push_back(slot);
  slot_of_.erase(it);
  flow_order_.erase(flow);
  reserved_dirty_ = true;
}

double IntServQueue::flow_rate_bps(FlowId flow) const {
  if (config_.legacy_flow_map) {
    const auto it = flows_.find(flow);
    return it == flows_.end() ? 0.0 : it->second.bucket.rate_bps();
  }
  const auto it = slot_of_.find(flow);
  return it == slot_of_.end() ? 0.0 : flow_bucket_[it->second].rate_bps();
}

double IntServQueue::reserved_rate_bps() const {
  if (config_.legacy_flow_map) {
    double sum = 0.0;
    for (const auto& [id, f] : flows_) sum += f.bucket.rate_bps();
    return sum;
  }
  if (reserved_dirty_) {
    reserved_sum_ = 0.0;
    for (const FlowId id : flow_order_) {
      reserved_sum_ += flow_bucket_[slot_of_.at(id)].rate_bps();
    }
    reserved_dirty_ = false;
  }
  return reserved_sum_;
}

// --- data plane --------------------------------------------------------------

std::optional<Packet> IntServQueue::enqueue(Packet p, TimePoint now) {
  if (config_.legacy_flow_map) return enqueue_legacy(std::move(p), now);
  if (classify(p.dscp) == PhbClass::NetworkControl) {
    if (control_.size() >= config_.control_capacity) {
      count_drop(p);
      return p;
    }
    count_enqueue(p);
    bytes_ += p.size_bytes;
    ++packets_;
    control_.push_back(std::move(p));
    return std::nullopt;
  }
  const auto it = p.flow != kNoFlow ? slot_of_.find(p.flow) : slot_of_.end();
  if (it != slot_of_.end()) {
    const std::uint32_t slot = it->second;
    if (config_.excess_to_best_effort) {
      // Policing: pay for the packet now; conforming packets get the
      // guaranteed queue, excess falls through to best effort below.
      // (Capacity is checked first so a full queue does not burn tokens.)
      if (flow_fifo_[slot].len < config_.flow_capacity &&
          policer_consume(flow_bucket_[slot], p.size_bytes, now)) {
        count_enqueue(p);
        bytes_ += p.size_bytes;
        ++packets_;
        const FlowId id = p.flow;
        flow_push(slot, id, std::move(p));
        return std::nullopt;
      }
      // Non-conforming: demoted to best effort below.
      trace_demote(p, now);
    } else {
      // Shaping: a packet larger than a bucket depth could never conform
      // and would wedge the flow queue; treat it as non-conformable.
      if (shape_unconformable(flow_bucket_[slot], p.size_bytes) ||
          flow_fifo_[slot].len >= config_.flow_capacity) {
        count_drop(p);
        return p;
      }
      count_enqueue(p);
      bytes_ += p.size_bytes;
      ++packets_;
      const FlowId id = p.flow;
      flow_push(slot, id, std::move(p));
      return std::nullopt;
    }
  }
  if (best_effort_.size() >= config_.best_effort_capacity) {
    count_drop(p);
    return p;
  }
  count_enqueue(p);
  bytes_ += p.size_bytes;
  ++packets_;
  best_effort_.push_back(std::move(p));
  return std::nullopt;
}

std::optional<Packet> IntServQueue::dequeue(TimePoint now) {
  if (config_.legacy_flow_map) return dequeue_legacy(now);
  // 1. Control plane first.
  if (!control_.empty()) {
    Packet p = std::move(control_.front());
    control_.pop_front();
    bytes_ -= p.size_bytes;
    --packets_;
    count_dequeue();
    return p;
  }
  // 2. Conforming reserved-flow packets, lowest ready FlowId first — the
  // same pick as the legacy ascending-map scan, found in the ready index
  // instead of by walking every reserved flow.
  if (config_.excess_to_best_effort) {
    // Demote mode: queued packets pre-paid their tokens at enqueue, so the
    // first ready flow is always servable.
    if (!flow_ready_.empty()) {
      const auto [id, slot] = *flow_ready_.begin();
      Packet p = flow_pop(slot, id);
      bytes_ -= p.size_bytes;
      --packets_;
      count_dequeue();
      return p;
    }
  } else {
    for (const auto& [id, slot] : flow_ready_) {
      if (policer_consume(flow_bucket_[slot], flow_front(slot).size_bytes, now)) {
        Packet p = flow_pop(slot, id);  // returns immediately: safe erase
        bytes_ -= p.size_bytes;
        --packets_;
        count_dequeue();
        return p;
      }
    }
  }
  // 3. Best effort.
  if (!best_effort_.empty()) {
    Packet p = std::move(best_effort_.front());
    best_effort_.pop_front();
    bytes_ -= p.size_bytes;
    --packets_;
    count_dequeue();
    return p;
  }
  return std::nullopt;
}

std::optional<Duration> IntServQueue::next_ready_delay(TimePoint now) const {
  if (config_.legacy_flow_map) return next_ready_delay_legacy(now);
  if (!control_.empty() || !best_effort_.empty()) return Duration::zero();
  if (config_.excess_to_best_effort) {
    // Pre-paid: any ready flow is immediately servable.
    return flow_ready_.empty() ? std::nullopt
                               : std::make_optional(Duration::zero());
  }
  Duration best = Duration::max();
  for (const auto& [id, slot] : flow_ready_) {
    best = std::min(best, policer_wait(flow_bucket_[slot],
                                       flow_front(slot).size_bytes, now));
  }
  if (best == Duration::max()) return std::nullopt;  // nothing queued anywhere
  return best;
}

// --- legacy oracle data plane (config_.legacy_flow_map == true) --------------
// The original ordered-map implementation, kept verbatim as the
// differential oracle; only the policing calls route through the shared
// policer_* helpers so the hierarchical parent behaves identically in
// both modes (with the parent disabled the helpers are the original
// single-bucket calls).

std::optional<Packet> IntServQueue::enqueue_legacy(Packet p, TimePoint now) {
  if (classify(p.dscp) == PhbClass::NetworkControl) {
    if (control_.size() >= config_.control_capacity) {
      count_drop(p);
      return p;
    }
    count_enqueue(p);
    bytes_ += p.size_bytes;
    ++packets_;
    control_.push_back(std::move(p));
    return std::nullopt;
  }
  const auto it = p.flow != kNoFlow ? flows_.find(p.flow) : flows_.end();
  if (it != flows_.end()) {
    if (config_.excess_to_best_effort) {
      if (it->second.q.size() < config_.flow_capacity &&
          policer_consume(it->second.bucket, p.size_bytes, now)) {
        count_enqueue(p);
        bytes_ += p.size_bytes;
        ++packets_;
        it->second.q.push_back(std::move(p));
        return std::nullopt;
      }
      trace_demote(p, now);
    } else {
      if (shape_unconformable(it->second.bucket, p.size_bytes) ||
          it->second.q.size() >= config_.flow_capacity) {
        count_drop(p);
        return p;
      }
      count_enqueue(p);
      bytes_ += p.size_bytes;
      ++packets_;
      it->second.q.push_back(std::move(p));
      return std::nullopt;
    }
  }
  if (best_effort_.size() >= config_.best_effort_capacity) {
    count_drop(p);
    return p;
  }
  count_enqueue(p);
  bytes_ += p.size_bytes;
  ++packets_;
  best_effort_.push_back(std::move(p));
  return std::nullopt;
}

std::optional<Packet> IntServQueue::dequeue_legacy(TimePoint now) {
  // 1. Control plane first.
  if (!control_.empty()) {
    Packet p = std::move(control_.front());
    control_.pop_front();
    bytes_ -= p.size_bytes;
    --packets_;
    count_dequeue();
    return p;
  }
  // 2. Conforming reserved-flow packets (deterministic flow order). In
  // demote mode packets already paid their tokens at enqueue.
  for (auto& [id, f] : flows_) {
    if (f.q.empty()) continue;
    if (config_.excess_to_best_effort ||
        policer_consume(f.bucket, f.q.front().size_bytes, now)) {
      Packet p = std::move(f.q.front());
      f.q.pop_front();
      bytes_ -= p.size_bytes;
      --packets_;
      count_dequeue();
      return p;
    }
  }
  // 3. Best effort.
  if (!best_effort_.empty()) {
    Packet p = std::move(best_effort_.front());
    best_effort_.pop_front();
    bytes_ -= p.size_bytes;
    --packets_;
    count_dequeue();
    return p;
  }
  return std::nullopt;
}

std::optional<Duration> IntServQueue::next_ready_delay_legacy(TimePoint now) const {
  if (!control_.empty() || !best_effort_.empty()) return Duration::zero();
  Duration best = Duration::max();
  for (const auto& [id, f] : flows_) {
    if (f.q.empty()) continue;
    if (config_.excess_to_best_effort) return Duration::zero();  // pre-paid
    best = std::min(best, policer_wait(f.bucket, f.q.front().size_bytes, now));
  }
  if (best == Duration::max()) return std::nullopt;  // nothing queued anywhere
  return best;
}

}  // namespace aqm::net

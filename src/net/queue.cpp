#include "net/queue.hpp"

#include <algorithm>
#include <cassert>

namespace aqm::net {

// --- DropTailQueue -----------------------------------------------------------

DropTailQueue::DropTailQueue(std::size_t capacity_packets) : capacity_(capacity_packets) {
  assert(capacity_ > 0);
}

std::optional<Packet> DropTailQueue::enqueue(Packet p, TimePoint /*now*/) {
  if (q_.size() >= capacity_) {
    count_drop(p);
    return p;
  }
  count_enqueue(p);
  bytes_ += p.size_bytes;
  q_.push_back(std::move(p));
  return std::nullopt;
}

std::optional<Packet> DropTailQueue::dequeue(TimePoint /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  count_dequeue();
  return p;
}

std::optional<Duration> DropTailQueue::next_ready_delay(TimePoint /*now*/) const {
  return std::nullopt;  // FIFO: packets are always eligible, so never "not ready"
}

// --- DiffServQueue -----------------------------------------------------------

DiffServQueue::DiffServQueue(std::size_t class_capacity) {
  capacities_.fill(class_capacity);
  assert(class_capacity > 0);
}

DiffServQueue::DiffServQueue(const std::array<std::size_t, kPhbClassCount>& capacities)
    : capacities_(capacities) {}

std::optional<Packet> DiffServQueue::enqueue(Packet p, TimePoint /*now*/) {
  const auto cls = static_cast<std::size_t>(classify(p.dscp));
  if (classes_[cls].size() >= capacities_[cls]) {
    count_drop(p);
    return p;
  }
  count_enqueue(p);
  bytes_ += p.size_bytes;
  ++packets_;
  classes_[cls].push_back(std::move(p));
  return std::nullopt;
}

std::optional<Packet> DiffServQueue::dequeue(TimePoint /*now*/) {
  for (auto& cls : classes_) {
    if (cls.empty()) continue;
    Packet p = std::move(cls.front());
    cls.pop_front();
    bytes_ -= p.size_bytes;
    --packets_;
    count_dequeue();
    return p;
  }
  return std::nullopt;
}

std::optional<Duration> DiffServQueue::next_ready_delay(TimePoint /*now*/) const {
  return std::nullopt;  // strict priority: a queued packet is always eligible
}

// --- IntServQueue ------------------------------------------------------------

IntServQueue::IntServQueue(Config config) : config_(config) {
  assert(config_.best_effort_capacity > 0);
  assert(config_.flow_capacity > 0);
  assert(config_.control_capacity > 0);
}

void IntServQueue::install_reservation(FlowId flow, double rate_bps,
                                       std::uint32_t bucket_bytes, TimePoint now) {
  assert(flow != kNoFlow);
  // Replace any existing reservation for the flow (RSVP refresh/modify);
  // queued packets of the old state are preserved.
  const auto it = flows_.find(flow);
  if (it != flows_.end()) {
    std::deque<Packet> pending = std::move(it->second.q);
    for (const auto& p : pending) bytes_ -= p.size_bytes;  // re-added below
    flows_.erase(it);
    auto [nit, inserted] =
        flows_.emplace(flow, FlowState{TokenBucket{rate_bps, bucket_bytes, now}, {}});
    assert(inserted);
    for (auto& p : pending) {
      bytes_ += p.size_bytes;
      nit->second.q.push_back(std::move(p));
    }
    return;
  }
  flows_.emplace(flow, FlowState{TokenBucket{rate_bps, bucket_bytes, now}, {}});
}

void IntServQueue::remove_reservation(FlowId flow) {
  const auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  // Queued packets of the torn-down flow demote to best effort (clamped by
  // the best-effort capacity).
  for (auto& p : it->second.q) {
    if (best_effort_.size() >= config_.best_effort_capacity) {
      bytes_ -= p.size_bytes;
      --packets_;
      count_drop(p);
      continue;
    }
    best_effort_.push_back(std::move(p));
  }
  flows_.erase(it);
}

double IntServQueue::flow_rate_bps(FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? 0.0 : it->second.bucket.rate_bps();
}

double IntServQueue::reserved_rate_bps() const {
  double sum = 0.0;
  for (const auto& [id, f] : flows_) sum += f.bucket.rate_bps();
  return sum;
}

std::optional<Packet> IntServQueue::enqueue(Packet p, TimePoint now) {
  if (classify(p.dscp) == PhbClass::NetworkControl) {
    if (control_.size() >= config_.control_capacity) {
      count_drop(p);
      return p;
    }
    count_enqueue(p);
    bytes_ += p.size_bytes;
    ++packets_;
    control_.push_back(std::move(p));
    return std::nullopt;
  }
  const auto it = p.flow != kNoFlow ? flows_.find(p.flow) : flows_.end();
  if (it != flows_.end()) {
    if (config_.excess_to_best_effort) {
      // Policing: pay for the packet now; conforming packets get the
      // guaranteed queue, excess falls through to best effort below.
      // (Capacity is checked first so a full queue does not burn tokens.)
      if (it->second.q.size() < config_.flow_capacity &&
          it->second.bucket.consume(p.size_bytes, now)) {
        count_enqueue(p);
        bytes_ += p.size_bytes;
        ++packets_;
        it->second.q.push_back(std::move(p));
        return std::nullopt;
      }
      // Non-conforming: demoted to best effort below.
      if (obs::TraceRecorder* tr = tracer()) {
        tr->instant(obs::TraceCategory::Net, "intserv.demote", trace_track(), now,
                    p.trace, {{"flow", static_cast<double>(p.flow)},
                              {"bytes", static_cast<double>(p.size_bytes)}});
      }
    } else {
      // Shaping: a packet larger than the bucket depth could never conform
      // and would wedge the flow queue; treat it as non-conformable.
      if (p.size_bytes > it->second.bucket.depth_bytes() ||
          it->second.q.size() >= config_.flow_capacity) {
        count_drop(p);
        return p;
      }
      count_enqueue(p);
      bytes_ += p.size_bytes;
      ++packets_;
      it->second.q.push_back(std::move(p));
      return std::nullopt;
    }
  }
  if (best_effort_.size() >= config_.best_effort_capacity) {
    count_drop(p);
    return p;
  }
  count_enqueue(p);
  bytes_ += p.size_bytes;
  ++packets_;
  best_effort_.push_back(std::move(p));
  return std::nullopt;
}

std::optional<Packet> IntServQueue::dequeue(TimePoint now) {
  // 1. Control plane first.
  if (!control_.empty()) {
    Packet p = std::move(control_.front());
    control_.pop_front();
    bytes_ -= p.size_bytes;
    --packets_;
    count_dequeue();
    return p;
  }
  // 2. Conforming reserved-flow packets (deterministic flow order). In
  // demote mode packets already paid their tokens at enqueue.
  for (auto& [id, f] : flows_) {
    if (f.q.empty()) continue;
    if (config_.excess_to_best_effort ||
        f.bucket.consume(f.q.front().size_bytes, now)) {
      Packet p = std::move(f.q.front());
      f.q.pop_front();
      bytes_ -= p.size_bytes;
      --packets_;
      count_dequeue();
      return p;
    }
  }
  // 3. Best effort.
  if (!best_effort_.empty()) {
    Packet p = std::move(best_effort_.front());
    best_effort_.pop_front();
    bytes_ -= p.size_bytes;
    --packets_;
    count_dequeue();
    return p;
  }
  return std::nullopt;
}

std::optional<Duration> IntServQueue::next_ready_delay(TimePoint now) const {
  if (!control_.empty() || !best_effort_.empty()) return Duration::zero();
  Duration best = Duration::max();
  for (const auto& [id, f] : flows_) {
    if (f.q.empty()) continue;
    if (config_.excess_to_best_effort) return Duration::zero();  // pre-paid
    best = std::min(best, f.bucket.time_until_conforms(f.q.front().size_bytes, now));
  }
  if (best == Duration::max()) return std::nullopt;  // nothing queued anywhere
  return best;
}

}  // namespace aqm::net

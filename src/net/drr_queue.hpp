// Weighted fair queuing via Deficit Round Robin (Shreedhar & Varghese).
//
// The strict-priority DiffServ PHB starves lower classes whenever a higher
// class saturates the link. DRR instead shares bandwidth proportionally to
// per-class weights: each backlogged class accumulates `quantum * weight`
// bytes of sending credit per round and transmits packets while its
// deficit covers them. This is the other classic per-hop behavior for AF
// classes (and what Linux `sch_drr` implements).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <list>

#include "common/time.hpp"
#include "net/dscp.hpp"
#include "net/queue.hpp"

namespace aqm::net {

struct DrrConfig {
  /// Per-class packet capacity.
  std::size_t class_capacity = 500;
  /// Base quantum (bytes) credited per round; scaled by the class weight.
  /// Should be >= the MTU so every visit can send at least one packet.
  std::uint32_t quantum_bytes = 1500;
  /// Relative weights, indexed by PhbClass (control..best-effort).
  /// Defaults roughly mirror a DiffServ deployment: control and EF heavy,
  /// AF descending, best effort light but never zero (no starvation).
  std::array<std::uint32_t, kPhbClassCount> weights{8, 8, 4, 3, 2, 2, 1};
};

class DrrQueue final : public Queue {
 public:
  explicit DrrQueue(DrrConfig config);

  std::optional<Packet> enqueue(Packet p, TimePoint now) override;
  std::optional<Packet> dequeue(TimePoint now) override;
  [[nodiscard]] std::optional<Duration> next_ready_delay(TimePoint now) const override;
  [[nodiscard]] std::size_t packets() const override;
  [[nodiscard]] std::size_t bytes() const override { return bytes_; }

  [[nodiscard]] std::size_t class_packets(PhbClass c) const {
    return classes_[static_cast<std::size_t>(c)].q.size();
  }
  [[nodiscard]] std::uint64_t class_bytes_sent(PhbClass c) const {
    return classes_[static_cast<std::size_t>(c)].bytes_sent;
  }

 private:
  struct ClassState {
    std::deque<Packet> q;
    std::int64_t deficit = 0;
    bool in_active_list = false;
    bool granted_this_round = false;
    std::uint64_t bytes_sent = 0;
  };

  DrrConfig config_;
  std::array<ClassState, kPhbClassCount> classes_;
  std::list<std::size_t> active_;  // round-robin order of backlogged classes
  std::size_t bytes_ = 0;
};

}  // namespace aqm::net

#include "net/traffic_gen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aqm::net {

namespace {

TrafficGenerator::Config with_seed(TrafficGenerator::Config c, std::uint64_t seed) {
  c.seed = seed;
  return c;
}

}  // namespace

TrafficGenerator::TrafficGenerator(Network& net, Config config)
    : net_(net), config_(config), rng_(config.seed) {
  assert(config_.src != kInvalidNode);
  assert(config_.dst != kInvalidNode);
  assert(config_.rate_bps > 0.0);
  assert(config_.packet_bytes > 0);
}

TrafficGenerator::TrafficGenerator(Network& net, Config config, std::uint64_t trial_seed)
    : TrafficGenerator(net, with_seed(std::move(config), trial_seed)) {}

void TrafficGenerator::start() {
  if (running_) return;
  running_ = true;
  sending_ = true;
  arm_next();
  if (bursty()) arm_toggle();
}

void TrafficGenerator::stop() {
  if (!running_) return;
  running_ = false;
  if (next_event_.valid()) net_.engine().cancel(next_event_);
  next_event_ = sim::EventId{};
  if (toggle_event_.valid()) net_.engine().cancel(toggle_event_);
  toggle_event_ = sim::EventId{};
}

void TrafficGenerator::arm_toggle() {
  const Duration mean = sending_ ? config_.on_mean : config_.off_mean;
  const auto wait = Duration{std::max<std::int64_t>(
      1, static_cast<std::int64_t>(rng_.exponential(static_cast<double>(mean.ns()))))};
  toggle_event_ = net_.engine().after(wait, [this] {
    toggle_event_ = sim::EventId{};
    if (!running_) return;
    sending_ = !sending_;
    if (sending_ && !next_event_.valid()) arm_next();
    arm_toggle();
  });
}

void TrafficGenerator::run_between(TimePoint from, TimePoint until) {
  assert(from < until);
  auto& engine = net_.engine();
  engine.at(from, [this] { start(); });
  engine.at(until, [this] { stop(); });
}

Duration TrafficGenerator::interval() {
  const double mean_s =
      static_cast<double>(config_.packet_bytes) * 8.0 / config_.rate_bps;
  const double s = config_.poisson ? rng_.exponential(mean_s) : mean_s;
  return Duration{std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(s * 1e9)))};
}

void TrafficGenerator::arm_next() {
  next_event_ = net_.engine().after(interval(), [this] {
    next_event_ = sim::EventId{};
    if (!running_ || !sending_) return;  // paused until the next "on" toggle
    Packet p;
    p.dst = config_.dst;
    p.size_bytes = config_.packet_bytes;
    p.dscp = config_.dscp;
    p.flow = config_.flow;
    p.seq = seq_++;
    net_.send(config_.src, std::move(p));
    ++sent_;
    arm_next();
  });
}

}  // namespace aqm::net

#include "net/red_queue.hpp"

#include <algorithm>
#include <cassert>

#include "obs/telemetry.hpp"

namespace aqm::net {

RedQueue::RedQueue(RedConfig config) : config_(config), rng_(config.seed) {
  assert(config_.capacity_packets > 0);
  assert(config_.min_threshold < config_.max_threshold);
  assert(config_.max_probability > 0.0 && config_.max_probability <= 1.0);
  assert(config_.weight > 0.0 && config_.weight <= 1.0);
}

bool RedQueue::congestion_signal() {
  if (avg_ < config_.min_threshold) {
    count_since_mark_ = -1;
    return false;
  }
  if (avg_ >= config_.max_threshold) {
    count_since_mark_ = 0;
    return true;
  }
  ++count_since_mark_;
  const double pb = config_.max_probability * (avg_ - config_.min_threshold) /
                    (config_.max_threshold - config_.min_threshold);
  // Uniform spacing refinement: pa = pb / (1 - count * pb).
  const double denom = 1.0 - static_cast<double>(count_since_mark_) * pb;
  const double pa = denom <= 0.0 ? 1.0 : std::min(1.0, pb / denom);
  if (rng_.bernoulli(pa)) {
    count_since_mark_ = 0;
    return true;
  }
  return false;
}

std::optional<Packet> RedQueue::enqueue(Packet p, TimePoint now) {
  avg_ = (1.0 - config_.weight) * avg_ +
         config_.weight * static_cast<double>(q_.size());

  if (q_.size() >= config_.capacity_packets) {
    count_drop(p);
    return p;
  }
  if (congestion_signal()) {
    if (config_.ecn && p.ecn == Ecn::Capable) {
      p.ecn = Ecn::CongestionExperienced;
      ++marked_;
      // marked packets are still enqueued
      if (obs::TraceRecorder* tr = tracer()) {
        tr->instant(obs::TraceCategory::Net, "red.mark", trace_track(), now, p.trace,
                    {{"avg", avg_}, {"flow", static_cast<double>(p.flow)}});
      }
      if (obs::TelemetryHub* th = telemetry()) th->on_ce_mark(p.flow, now);
    } else {
      ++early_dropped_;
      if (obs::TraceRecorder* tr = tracer()) {
        tr->instant(obs::TraceCategory::Net, "red.early_drop", trace_track(), now,
                    p.trace, {{"avg", avg_}, {"flow", static_cast<double>(p.flow)}});
      }
      count_drop(p);
      return p;
    }
  }
  count_enqueue(p);
  bytes_ += p.size_bytes;
  q_.push_back(std::move(p));
  return std::nullopt;
}

std::optional<Packet> RedQueue::dequeue(TimePoint /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  count_dequeue();
  return p;
}

std::optional<Duration> RedQueue::next_ready_delay(TimePoint /*now*/) const {
  return std::nullopt;
}

}  // namespace aqm::net

// Small-buffer-optimized replacement for std::any in the packet hot path.
//
// Every simulated packet carries a typed payload (a GIOP fragment, an RSVP
// message). libstdc++'s std::any only stores trivially-copyable payloads up
// to one pointer inline, so each packet paid a heap allocation. All payload
// types in this codebase fit in 48 bytes; PacketPayload keeps them inline
// (falling back to the heap for anything larger) so forwarding a packet
// through routers and queues never allocates.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace aqm::net {

class PacketPayload {
 public:
  static constexpr std::size_t kInlineSize = 48;

  PacketPayload() = default;

  template <typename T,
            typename D = std::decay_t<T>,
            typename = std::enable_if_t<!std::is_same_v<D, PacketPayload> &&
                                        std::is_copy_constructible_v<D>>>
  PacketPayload(T&& v) {  // NOLINT(google-explicit-constructor): mirrors std::any
    construct<T>(std::forward<T>(v));
  }

  PacketPayload(PacketPayload&& other) noexcept { steal(other); }
  PacketPayload& operator=(PacketPayload&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  PacketPayload(const PacketPayload& other) {
    if (other.ops_ != nullptr) {
      other.ops_->copy(other.buf_, buf_);
      ops_ = other.ops_;
    }
  }
  PacketPayload& operator=(const PacketPayload& other) {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        other.ops_->copy(other.buf_, buf_);
        ops_ = other.ops_;
      }
    }
    return *this;
  }
  ~PacketPayload() { reset(); }

  [[nodiscard]] bool has_value() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Typed access; nullptr when empty or the stored type differs.
  template <typename T>
  [[nodiscard]] T* get() {
    if (ops_ == nullptr || ops_->tag != &type_tag<std::decay_t<T>>) return nullptr;
    return ptr<std::decay_t<T>>();
  }
  template <typename T>
  [[nodiscard]] const T* get() const {
    return const_cast<PacketPayload*>(this)->get<T>();
  }

  /// Moves the stored value out and empties the payload. The stored type
  /// must match (asserted) — use get() first when unsure.
  template <typename T>
  [[nodiscard]] T take() {
    T* p = get<T>();
    assert(p != nullptr && "PacketPayload::take type mismatch");
    T out = std::move(*p);
    reset();
    return out;
  }

 private:
  struct Ops {
    void (*copy)(const void* src, void* dst);
    void (*relocate)(void* src, void* dst) noexcept;  // move into dst, destroy src
    void (*destroy)(void*) noexcept;
    const void* tag;
  };

  // One address per payload type, used as a cheap type id (no RTTI).
  template <typename D>
  static constexpr char type_tag = 0;

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  [[nodiscard]] D* ptr() {
    if constexpr (fits_inline<D>()) {
      return std::launder(reinterpret_cast<D*>(buf_));
    } else {
      return *std::launder(reinterpret_cast<D**>(buf_));
    }
  }

  template <typename T, typename D = std::decay_t<T>>
  void construct(T&& v) {
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<T>(v));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<T>(v)));
      ops_ = &kHeapOps<D>;
    }
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      [](const void* src, void* dst) {
        ::new (dst) D(*std::launder(reinterpret_cast<const D*>(src)));
      },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* src, void* dst) noexcept {
              D* s = std::launder(reinterpret_cast<D*>(src));
              ::new (dst) D(std::move(*s));
              s->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); },
      &type_tag<D>,
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](const void* src, void* dst) {
        ::new (dst) D*(new D(**std::launder(reinterpret_cast<D* const*>(src))));
      },
      nullptr,  // pointer payload: relocation is the default memcpy
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); },
      &type_tag<D>,
  };

  void steal(PacketPayload& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(other.buf_, buf_);
      } else {
        std::memcpy(buf_, other.buf_, kInlineSize);
      }
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineSize];
};

}  // namespace aqm::net

// Token bucket used for IntServ guaranteed-service flows: a flow reserved
// at `rate_bps` with burst `depth_bytes` may transmit a packet whenever the
// bucket holds at least the packet's size in tokens.
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace aqm::net {

class TokenBucket {
 public:
  TokenBucket(double rate_bps, std::uint32_t depth_bytes, TimePoint start = TimePoint::zero());

  [[nodiscard]] double rate_bps() const { return rate_bps_; }
  [[nodiscard]] std::uint32_t depth_bytes() const { return depth_bytes_; }

  /// Tokens (bytes) available at `now`.
  [[nodiscard]] double available(TimePoint now) const;

  /// True if a packet of `bytes` conforms at `now`.
  [[nodiscard]] bool conforms(std::uint32_t bytes, TimePoint now) const;

  /// Consumes tokens for a packet; returns false (and consumes nothing) if
  /// the packet does not conform.
  bool consume(std::uint32_t bytes, TimePoint now);

  /// Time until a packet of `bytes` would conform (zero if it already does;
  /// Duration::max() if bytes > depth so it can never conform).
  [[nodiscard]] Duration time_until_conforms(std::uint32_t bytes, TimePoint now) const;

 private:
  void refill(TimePoint now);

  double rate_bps_;
  std::uint32_t depth_bytes_;
  double tokens_;       // bytes
  TimePoint last_refill_;
};

}  // namespace aqm::net

// Token bucket used for IntServ guaranteed-service flows: a flow reserved
// at `rate_bps` with burst `depth_bytes` may transmit a packet whenever the
// bucket holds at least the packet's size in tokens.
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace aqm::net {

class TokenBucket {
 public:
  TokenBucket(double rate_bps, std::uint32_t depth_bytes, TimePoint start = TimePoint::zero());

  [[nodiscard]] double rate_bps() const { return rate_bps_; }
  [[nodiscard]] std::uint32_t depth_bytes() const { return depth_bytes_; }

  /// Live re-stamp: changes rate/depth in place without resetting the fill
  /// level. Tokens accrued so far are settled at the OLD rate up to `now`,
  /// then clamped to the new depth — so a rate change takes effect exactly
  /// at `now`, an over-full bucket loses its excess burst, and re-applying
  /// the current parameters is a no-op (idempotent).
  void reconfigure(double rate_bps, std::uint32_t depth_bytes, TimePoint now);

  /// Tokens (bytes) available at `now`.
  [[nodiscard]] double available(TimePoint now) const;

  /// True if a packet of `bytes` conforms at `now`.
  [[nodiscard]] bool conforms(std::uint32_t bytes, TimePoint now) const;

  /// Consumes tokens for a packet; returns false (and consumes nothing) if
  /// the packet does not conform.
  bool consume(std::uint32_t bytes, TimePoint now);

  /// Time until a packet of `bytes` would conform (zero if it already does;
  /// Duration::max() if bytes > depth so it can never conform).
  [[nodiscard]] Duration time_until_conforms(std::uint32_t bytes, TimePoint now) const;

 private:
  void refill(TimePoint now);

  double rate_bps_;
  std::uint32_t depth_bytes_;
  double tokens_;       // bytes
  TimePoint last_refill_;
};

// --- hierarchical (two-level) policing --------------------------------------
//
// High-fan-in egress queues police per-flow children under one shared
// per-class parent: a packet conforms iff BOTH its flow's child bucket and
// the class parent hold enough tokens, and a conforming packet debits both.
// The check touches exactly two buckets however many sibling flows exist,
// so aggregate policing cost per packet is independent of flow count.
// A non-conforming packet debits neither level (the check uses conforms(),
// which is side-effect free), so a burst rejected by the parent cannot
// starve the child of tokens it never spent.

/// Consumes from child and parent iff the packet conforms at both levels.
[[nodiscard]] bool hierarchical_consume(TokenBucket& parent, TokenBucket& child,
                                        std::uint32_t bytes, TimePoint now);

/// Earliest instant-from-now at which the packet conforms at both levels
/// (the max of the two per-bucket waits; Duration::max() if either bucket
/// is too shallow to ever pass the packet).
[[nodiscard]] Duration hierarchical_time_until_conforms(const TokenBucket& parent,
                                                        const TokenBucket& child,
                                                        std::uint32_t bytes,
                                                        TimePoint now);

}  // namespace aqm::net

#include "imgproc/synth.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace aqm::img {

RgbImage make_scene(int width, int height, std::uint64_t seed) {
  Rng rng(seed);
  RgbImage image(width, height);

  // Background: vertical sky-to-ground gradient.
  for (int y = 0; y < height; ++y) {
    const double t = static_cast<double>(y) / std::max(1, height - 1);
    const auto sky = static_cast<std::uint8_t>(180 - 90 * t);
    const auto ground = static_cast<std::uint8_t>(70 + 60 * t);
    for (int x = 0; x < width; ++x) {
      image.at(x, y, 0) = static_cast<std::uint8_t>(sky / 2 + ground / 2);
      image.at(x, y, 1) = sky;
      image.at(x, y, 2) = static_cast<std::uint8_t>(ground / 2 + 40);
    }
  }

  // A few rectangular "vehicles".
  const int rects = 3 + static_cast<int>(rng.uniform_int(0, 2));
  for (int r = 0; r < rects; ++r) {
    const int rw = static_cast<int>(rng.uniform_int(20, 60));
    const int rh = static_cast<int>(rng.uniform_int(10, 30));
    const int rx = static_cast<int>(rng.uniform_int(0, std::max(1, width - rw - 1)));
    const int ry = static_cast<int>(rng.uniform_int(height / 2, std::max(height / 2 + 1, height - rh - 1)));
    const auto shade = static_cast<std::uint8_t>(rng.uniform_int(10, 60));
    for (int y = ry; y < ry + rh && y < height; ++y) {
      for (int x = rx; x < rx + rw && x < width; ++x) {
        image.at(x, y, 0) = shade;
        image.at(x, y, 1) = shade;
        image.at(x, y, 2) = shade;
      }
    }
  }

  // A circular "installation".
  const int cx = static_cast<int>(rng.uniform_int(width / 4, 3 * width / 4));
  const int cy = static_cast<int>(rng.uniform_int(height / 4, 3 * height / 4));
  const int radius = static_cast<int>(rng.uniform_int(12, 30));
  for (int y = std::max(0, cy - radius); y <= std::min(height - 1, cy + radius); ++y) {
    for (int x = std::max(0, cx - radius); x <= std::min(width - 1, cx + radius); ++x) {
      const int dx = x - cx;
      const int dy = y - cy;
      if (dx * dx + dy * dy <= radius * radius) {
        image.at(x, y, 0) = 220;
        image.at(x, y, 1) = 210;
        image.at(x, y, 2) = 190;
      }
    }
  }

  // Mild sensor noise on every channel.
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      for (int c = 0; c < 3; ++c) {
        const int noisy =
            image.at(x, y, c) + static_cast<int>(rng.uniform_int(-6, 6));
        image.at(x, y, c) = static_cast<std::uint8_t>(std::clamp(noisy, 0, 255));
      }
    }
  }
  return image;
}

}  // namespace aqm::img

// Edge detection: the three algorithms the paper runs in its ATR server
// (Table 2): Prewitt, Sobel (two-kernel gradient operators) and Kirsch
// (eight compass masks, max response). Real implementations over real
// pixels; the cost model below feeds the simulated servant.
#pragma once

#include <cstdint>
#include <string>

#include "common/time.hpp"
#include "imgproc/image.hpp"

namespace aqm::img {

enum class EdgeAlgorithm : std::uint8_t { Kirsch = 0, Prewitt = 1, Sobel = 2 };

[[nodiscard]] constexpr const char* to_string(EdgeAlgorithm a) {
  switch (a) {
    case EdgeAlgorithm::Kirsch: return "Kirsch";
    case EdgeAlgorithm::Prewitt: return "Prewitt";
    case EdgeAlgorithm::Sobel: return "Sobel";
  }
  return "?";
}

/// Gradient magnitude with the Prewitt operator, normalized to [0, 255].
[[nodiscard]] GrayImage prewitt(const GrayImage& in);

/// Gradient magnitude with the Sobel operator, normalized to [0, 255].
[[nodiscard]] GrayImage sobel(const GrayImage& in);

/// Kirsch compass operator: max response over the 8 rotated masks.
[[nodiscard]] GrayImage kirsch(const GrayImage& in);

[[nodiscard]] GrayImage run_edge(EdgeAlgorithm a, const GrayImage& in);

/// Binary threshold helper (edge maps are usually thresholded downstream).
[[nodiscard]] GrayImage threshold(const GrayImage& in, std::uint8_t level);

// --- cost model for the simulated ATR servant -----------------------------------
//
// Approximate per-pixel cycle costs of straightforward scalar C++
// implementations: two 3x3 kernels (Prewitt/Sobel) vs eight (Kirsch).
// These drive the CPU-time of the ATR servant in the Table 2 experiment;
// absolute values are calibration constants, the Kirsch/Prewitt/Sobel
// ratios are what matters.

[[nodiscard]] constexpr double cycles_per_pixel(EdgeAlgorithm a) {
  switch (a) {
    case EdgeAlgorithm::Kirsch: return 1000.0;  // 8 masks + max-reduce
    case EdgeAlgorithm::Prewitt: return 250.0;  // 2 masks
    case EdgeAlgorithm::Sobel: return 300.0;    // 2 masks, heavier weights
  }
  return 0.0;
}

/// Simulated CPU time for running `a` over `pixels` pixels at `hz`.
[[nodiscard]] Duration estimated_cost(EdgeAlgorithm a, std::size_t pixels, std::uint64_t hz);

}  // namespace aqm::img

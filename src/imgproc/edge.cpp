#include "imgproc/edge.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>

namespace aqm::img {
namespace {

using Kernel = std::array<int, 9>;

int apply_kernel(const GrayImage& in, int x, int y, const Kernel& k) {
  int acc = 0;
  int idx = 0;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      acc += k[static_cast<std::size_t>(idx++)] * in.at_clamped(x + dx, y + dy);
    }
  }
  return acc;
}

/// |Gx| + |Gy| gradient magnitude, scaled into [0, 255].
GrayImage two_kernel_gradient(const GrayImage& in, const Kernel& gx, const Kernel& gy,
                              int norm) {
  GrayImage out(in.width(), in.height());
  for (int y = 0; y < in.height(); ++y) {
    for (int x = 0; x < in.width(); ++x) {
      const int mag = std::abs(apply_kernel(in, x, y, gx)) +
                      std::abs(apply_kernel(in, x, y, gy));
      out.at(x, y) = static_cast<std::uint8_t>(std::min(255, mag / norm));
    }
  }
  return out;
}

}  // namespace

GrayImage prewitt(const GrayImage& in) {
  static constexpr Kernel gx{-1, 0, 1, -1, 0, 1, -1, 0, 1};
  static constexpr Kernel gy{-1, -1, -1, 0, 0, 0, 1, 1, 1};
  // Max |Gx|+|Gy| = 6*255; scale by 3 to keep contrast while clamping.
  return two_kernel_gradient(in, gx, gy, 3);
}

GrayImage sobel(const GrayImage& in) {
  static constexpr Kernel gx{-1, 0, 1, -2, 0, 2, -1, 0, 1};
  static constexpr Kernel gy{-1, -2, -1, 0, 0, 0, 1, 2, 1};
  return two_kernel_gradient(in, gx, gy, 4);
}

GrayImage kirsch(const GrayImage& in) {
  // The 8 Kirsch compass masks: three 5s rotate around the 8-neighbour
  // ring, the rest are -3 (every mask sums to zero). Generated instead of
  // hand-written so the rotation cannot be botched.
  static const std::array<Kernel, 8> masks = [] {
    // Ring positions clockwise from top-left in kernel index space:
    //  0 1 2
    //  3 4 5      ring: 0,1,2,5,8,7,6,3
    //  6 7 8
    constexpr std::array<int, 8> ring{0, 1, 2, 5, 8, 7, 6, 3};
    std::array<Kernel, 8> out{};
    for (std::size_t rot = 0; rot < 8; ++rot) {
      Kernel k{};
      k.fill(-3);
      k[4] = 0;
      for (std::size_t i = 0; i < 3; ++i) {
        k[static_cast<std::size_t>(ring[(rot + i) % 8])] = 5;
      }
      out[rot] = k;
    }
    return out;
  }();
  GrayImage out(in.width(), in.height());
  for (int y = 0; y < in.height(); ++y) {
    for (int x = 0; x < in.width(); ++x) {
      int best = 0;
      for (const auto& m : masks) {
        best = std::max(best, apply_kernel(in, x, y, m));
      }
      // Max response is 15*255; scale by 8.
      out.at(x, y) = static_cast<std::uint8_t>(std::min(255, best / 8));
    }
  }
  return out;
}

GrayImage run_edge(EdgeAlgorithm a, const GrayImage& in) {
  switch (a) {
    case EdgeAlgorithm::Kirsch: return kirsch(in);
    case EdgeAlgorithm::Prewitt: return prewitt(in);
    case EdgeAlgorithm::Sobel: return sobel(in);
  }
  return GrayImage{};
}

GrayImage threshold(const GrayImage& in, std::uint8_t level) {
  GrayImage out(in.width(), in.height());
  for (int y = 0; y < in.height(); ++y) {
    for (int x = 0; x < in.width(); ++x) {
      out.at(x, y) = in.at(x, y) >= level ? 255 : 0;
    }
  }
  return out;
}

Duration estimated_cost(EdgeAlgorithm a, std::size_t pixels, std::uint64_t hz) {
  const double cycles = cycles_per_pixel(a) * static_cast<double>(pixels);
  return Duration{static_cast<std::int64_t>(cycles * 1e9 / static_cast<double>(hz))};
}

}  // namespace aqm::img

// Synthetic sensor imagery: stands in for the paper's camera/file images
// (400x250 RGB PPM). Deterministic for a given seed.
#pragma once

#include <cstdint>

#include "imgproc/image.hpp"

namespace aqm::img {

/// A "reconnaissance" scene: sky/ground gradient, a few rectangular and
/// circular "targets" with sharp edges, plus mild sensor noise.
[[nodiscard]] RgbImage make_scene(int width, int height, std::uint64_t seed);

/// The paper's sensor image shape: 400x250 RGB.
[[nodiscard]] inline RgbImage make_paper_scene(std::uint64_t seed) {
  return make_scene(400, 250, seed);
}

}  // namespace aqm::img

#include "imgproc/image.hpp"

#include <algorithm>
#include <cassert>

namespace aqm::img {

GrayImage::GrayImage(int width, int height, std::uint8_t fill)
    : width_(width),
      height_(height),
      data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), fill) {
  assert(width > 0 && height > 0);
}

std::uint8_t GrayImage::at_clamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y);
}

RgbImage::RgbImage(int width, int height)
    : width_(width),
      height_(height),
      data_(3 * static_cast<std::size_t>(width) * static_cast<std::size_t>(height), 0) {
  assert(width > 0 && height > 0);
}

GrayImage RgbImage::to_gray() const {
  GrayImage out(width_, height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const int r = at(x, y, 0);
      const int g = at(x, y, 1);
      const int b = at(x, y, 2);
      // Integer ITU-R 601: Y = 0.299R + 0.587G + 0.114B.
      out.at(x, y) = static_cast<std::uint8_t>((299 * r + 587 * g + 114 * b) / 1000);
    }
  }
  return out;
}

}  // namespace aqm::img

// In-memory image types used by the ATR (automated target recognition)
// stand-in: real pixels, real algorithms.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace aqm::img {

class GrayImage {
 public:
  GrayImage() = default;
  GrayImage(int width, int height, std::uint8_t fill = 0);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::size_t pixel_count() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] std::uint8_t at(int x, int y) const {
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
  }
  std::uint8_t& at(int x, int y) {
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
  }

  /// Clamp-to-edge sampling (for kernel borders).
  [[nodiscard]] std::uint8_t at_clamped(int x, int y) const;

  [[nodiscard]] std::span<const std::uint8_t> data() const { return data_; }
  [[nodiscard]] std::span<std::uint8_t> data() { return data_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> data_;
};

class RgbImage {
 public:
  RgbImage() = default;
  RgbImage(int width, int height);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::size_t byte_count() const { return data_.size(); }

  /// Channel c in {0,1,2} = {R,G,B}.
  [[nodiscard]] std::uint8_t at(int x, int y, int c) const {
    return data_[pixel_offset(x, y) + static_cast<std::size_t>(c)];
  }
  std::uint8_t& at(int x, int y, int c) {
    return data_[pixel_offset(x, y) + static_cast<std::size_t>(c)];
  }

  /// ITU-R 601 luma conversion.
  [[nodiscard]] GrayImage to_gray() const;

  [[nodiscard]] std::span<const std::uint8_t> data() const { return data_; }
  [[nodiscard]] std::span<std::uint8_t> data() { return data_; }

 private:
  [[nodiscard]] std::size_t pixel_offset(int x, int y) const {
    return 3 * (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                static_cast<std::size_t>(x));
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace aqm::img

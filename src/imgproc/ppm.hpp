// PPM (P6) and PGM (P5) binary image serialization — the paper's sensor
// images were "four images in PPM format, 400x250 pixels, 300,060 bytes,
// RGB color" (exactly the 400*250*3 + 60-byte header of binary PPM).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "imgproc/image.hpp"

namespace aqm::img {

[[nodiscard]] std::vector<std::uint8_t> encode_ppm(const RgbImage& image);
[[nodiscard]] std::vector<std::uint8_t> encode_pgm(const GrayImage& image);

/// Throws std::runtime_error on malformed input.
[[nodiscard]] RgbImage decode_ppm(const std::vector<std::uint8_t>& bytes);
[[nodiscard]] GrayImage decode_pgm(const std::vector<std::uint8_t>& bytes);

void write_ppm_file(const std::string& path, const RgbImage& image);
void write_pgm_file(const std::string& path, const GrayImage& image);

}  // namespace aqm::img

#include "imgproc/ppm.hpp"

#include <cctype>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace aqm::img {
namespace {

void append_header(std::vector<std::uint8_t>& out, const char* magic, int w, int h) {
  const std::string header =
      std::string(magic) + "\n" + std::to_string(w) + " " + std::to_string(h) + "\n255\n";
  out.insert(out.end(), header.begin(), header.end());
}

struct HeaderInfo {
  int width = 0;
  int height = 0;
  std::size_t data_offset = 0;
};

HeaderInfo parse_header(const std::vector<std::uint8_t>& bytes, const char* magic) {
  std::size_t pos = 0;
  const std::size_t magic_len = std::strlen(magic);
  if (bytes.size() < magic_len || std::memcmp(bytes.data(), magic, magic_len) != 0) {
    throw std::runtime_error("bad PNM magic");
  }
  pos = magic_len;

  auto next_int = [&bytes, &pos]() -> int {
    // Skip whitespace and comments.
    while (pos < bytes.size()) {
      if (std::isspace(bytes[pos]) != 0) {
        ++pos;
      } else if (bytes[pos] == '#') {
        while (pos < bytes.size() && bytes[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
    int v = 0;
    bool any = false;
    while (pos < bytes.size() && std::isdigit(bytes[pos]) != 0) {
      v = v * 10 + (bytes[pos] - '0');
      ++pos;
      any = true;
    }
    if (!any) throw std::runtime_error("malformed PNM header");
    return v;
  };

  HeaderInfo info;
  info.width = next_int();
  info.height = next_int();
  const int maxval = next_int();
  if (maxval != 255) throw std::runtime_error("only maxval 255 supported");
  if (info.width <= 0 || info.height <= 0) throw std::runtime_error("bad dimensions");
  // Exactly one whitespace byte separates the header from pixel data.
  if (pos >= bytes.size() || std::isspace(bytes[pos]) == 0) {
    throw std::runtime_error("missing header terminator");
  }
  info.data_offset = pos + 1;
  return info;
}

}  // namespace

std::vector<std::uint8_t> encode_ppm(const RgbImage& image) {
  std::vector<std::uint8_t> out;
  out.reserve(image.byte_count() + 32);
  append_header(out, "P6", image.width(), image.height());
  out.insert(out.end(), image.data().begin(), image.data().end());
  return out;
}

std::vector<std::uint8_t> encode_pgm(const GrayImage& image) {
  std::vector<std::uint8_t> out;
  out.reserve(image.pixel_count() + 32);
  append_header(out, "P5", image.width(), image.height());
  out.insert(out.end(), image.data().begin(), image.data().end());
  return out;
}

RgbImage decode_ppm(const std::vector<std::uint8_t>& bytes) {
  const HeaderInfo info = parse_header(bytes, "P6");
  RgbImage image(info.width, info.height);
  if (bytes.size() - info.data_offset < image.byte_count()) {
    throw std::runtime_error("truncated PPM pixel data");
  }
  std::memcpy(image.data().data(), bytes.data() + info.data_offset, image.byte_count());
  return image;
}

GrayImage decode_pgm(const std::vector<std::uint8_t>& bytes) {
  const HeaderInfo info = parse_header(bytes, "P5");
  GrayImage image(info.width, info.height);
  if (bytes.size() - info.data_offset < image.pixel_count()) {
    throw std::runtime_error("truncated PGM pixel data");
  }
  std::memcpy(image.data().data(), bytes.data() + info.data_offset, image.pixel_count());
  return image;
}

void write_ppm_file(const std::string& path, const RgbImage& image) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  const auto bytes = encode_ppm(image);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void write_pgm_file(const std::string& path, const GrayImage& image) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  const auto bytes = encode_pgm(image);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

}  // namespace aqm::img

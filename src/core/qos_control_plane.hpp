// Runtime QoS control plane: a CORBA servant through which an external
// controller mutates live bindings mid-run — the EdgeRIC-style dynamic
// override channel (ROADMAP item 2) layered on the re-stampable session
// machinery. A controller sends override_flow(flow, partial-policy) and
// the control plane merges the engaged fields over the managed session's
// base policy and re-stamps it via QoSSession::update — priority, DSCP,
// deadline, batching, CPU reserve size and network reservation all change
// on the live binding with no session restart and (for the per-invocation
// knobs) no allocation. clear_override restores the base policy the same
// way. Overrides compose with the FeedbackScheduler: both drive the same
// update() diff path, so whichever writes last wins per mechanism.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "common/result.hpp"
#include "core/qos_policy.hpp"
#include "core/qos_session.hpp"
#include "net/dscp.hpp"
#include "net/packet.hpp"
#include "orb/orb.hpp"

namespace aqm::core {

inline constexpr const char* kQosControlObjectId = "qos_control";
inline constexpr const char* kOverrideFlowOp = "override_flow";
inline constexpr const char* kClearOverrideOp = "clear_override";

/// Partial policy: only the engaged fields replace the managed session's
/// base-policy values; disengaged fields keep the base value. (The
/// EdgeRIC override grammar: override priority/deadline/rate per bearer,
/// clear restores the defaults.)
struct PolicyOverride {
  std::optional<orb::CorbaPriority> priority;
  std::optional<net::Dscp> dscp;
  std::optional<Duration> deadline;
  std::optional<os::ReserveSpec> server_cpu_reserve;
  std::optional<net::FlowSpec> network_reservation;
  std::optional<OnewayBatchingPolicy> oneway_batching;

  [[nodiscard]] bool any() const {
    return priority || dscp || deadline || server_cpu_reserve || network_reservation ||
           oneway_batching;
  }
  friend bool operator==(const PolicyOverride&, const PolicyOverride&) = default;
};

/// Merges the engaged override fields over `base`. Allocation-free: both
/// structs hold only scalars and optionals of scalars.
[[nodiscard]] EndToEndQosPolicy merge_override(const EndToEndQosPolicy& base,
                                               const PolicyOverride& ov);

/// Server half: owns the flow -> session registry and the CORBA servant.
class QosControlPlane {
 public:
  /// Activates the "qos_control" servant in `poa`. Local callers (QuO
  /// contract regions, the FeedbackScheduler, tests) may also invoke
  /// override_flow/clear_override directly — the servant is the same code
  /// path one RPC later.
  explicit QosControlPlane(orb::Poa& poa);
  QosControlPlane(const QosControlPlane&) = delete;
  QosControlPlane& operator=(const QosControlPlane&) = delete;

  [[nodiscard]] const orb::ObjectRef& ref() const { return ref_; }

  /// Places a session under control-plane management, keyed by the flow id
  /// controllers address it with. The session's active policy at this
  /// moment becomes the *base* policy overrides merge onto (and
  /// clear_override restores). The session must outlive its management.
  void manage(net::FlowId flow, QoSSession& session);
  void unmanage(net::FlowId flow);
  [[nodiscard]] bool manages(net::FlowId flow) const { return managed_.count(flow) > 0; }

  /// Applies a partial-policy override to the managed flow's live binding.
  /// Re-applying the same override is idempotent at every layer below.
  Status<std::string> override_flow(net::FlowId flow, const PolicyOverride& ov);
  /// Restores the managed flow's base policy.
  Status<std::string> clear_override(net::FlowId flow);

  /// The active override for a flow, or nullptr when none (or unmanaged).
  [[nodiscard]] const PolicyOverride* active_override(net::FlowId flow) const;
  [[nodiscard]] std::uint64_t overrides_applied() const { return overrides_applied_; }

 private:
  struct Managed {
    QoSSession* session = nullptr;
    EndToEndQosPolicy base;
    PolicyOverride ov;
    bool overridden = false;
  };

  orb::ObjectRef ref_;
  std::map<net::FlowId, Managed> managed_;
  std::uint64_t overrides_applied_ = 0;
};

/// Remote controller client: typed async access to a host's control plane.
class QosControlClient {
 public:
  using Callback = std::function<void(Status<std::string>)>;

  QosControlClient(orb::OrbEndpoint& orb, orb::ObjectRef control);

  void override_flow(net::FlowId flow, const PolicyOverride& ov, Callback cb = nullptr,
                     Duration timeout = seconds(2));
  void clear_override(net::FlowId flow, Callback cb = nullptr,
                      Duration timeout = seconds(2));

 private:
  orb::ObjectStub stub_;
};

}  // namespace aqm::core

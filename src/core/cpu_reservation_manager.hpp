// CORBA-based CPU reservation manager.
//
// The paper (Section 3.3): "We are working with the University of Utah to
// develop a CORBA-based CPU reservation manager that will (1) be the local
// agent for setting up reservations on a host and (2) translate various
// representations of reservation specification into the particular style
// supported by the TimeSys implementation."
//
// Server side exposes create/destroy operations over the ORB; the client
// helper gives remote middleware (the QoS manager, QuO behaviors) typed
// asynchronous access.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.hpp"
#include "orb/orb.hpp"
#include "os/cpu.hpp"

namespace aqm::core {

inline constexpr const char* kCpuReserveManagerObjectId = "cpu_reserve_manager";
inline constexpr const char* kCreateReserveOp = "create_reserve";
inline constexpr const char* kUpdateReserveOp = "update_reserve";
inline constexpr const char* kDestroyReserveOp = "destroy_reserve";
inline constexpr const char* kQueryUtilizationOp = "query_utilization";

/// Host-local agent: activates the manager servant in `poa` and forwards
/// reservation requests to the host's resource kernel (os::Cpu).
class CpuReservationManagerServer {
 public:
  CpuReservationManagerServer(orb::Poa& poa, os::Cpu& cpu);

  [[nodiscard]] const orb::ObjectRef& ref() const { return ref_; }

 private:
  orb::ObjectRef ref_;
};

/// Remote client for a host's reservation manager.
class CpuReservationClient {
 public:
  using CreateCallback = std::function<void(Result<os::ReserveId>)>;
  using UpdateCallback = std::function<void(Status<std::string>)>;
  using DestroyCallback = std::function<void(bool ok)>;
  using UtilizationCallback = std::function<void(Result<double>)>;

  CpuReservationClient(orb::OrbEndpoint& orb, orb::ObjectRef manager);

  /// Requests a reserve of `spec.compute` every `spec.period` on the remote
  /// host. The callback receives the reserve id or the admission error.
  void create_reserve(const os::ReserveSpec& spec, CreateCallback cb,
                      Duration timeout = seconds(2));

  /// Resizes a live reserve in place on the remote host (os::Cpu::
  /// update_reserve): same reserve id, attached jobs stay attached,
  /// admission re-checked with the reserve's old share excluded. The
  /// control plane's CPU re-stamp primitive.
  void update_reserve(os::ReserveId id, const os::ReserveSpec& spec, UpdateCallback cb,
                      Duration timeout = seconds(2));

  void destroy_reserve(os::ReserveId id, DestroyCallback cb = nullptr,
                       Duration timeout = seconds(2));

  /// Asks the remote host for its admitted reserve utilization, sum(C/T).
  /// Admission planners poll this before placing work; the server answers
  /// from the kernel's incrementally-maintained sum, so the query costs
  /// O(1) regardless of how many reserves the host carries.
  void query_utilization(UtilizationCallback cb, Duration timeout = seconds(2));

 private:
  orb::ObjectStub stub_;
};

}  // namespace aqm::core

// Network QoS manager: owns the per-node RSVP agents and gives the rest of
// the middleware one place to request end-to-end network reservations —
// the "middleware retains the end-to-end perspective" role the paper
// assigns to QuO/TAO above the raw OS and network mechanisms.
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "net/network.hpp"
#include "net/rsvp.hpp"

namespace aqm::core {

class NetworkQosManager {
 public:
  explicit NetworkQosManager(net::Network& network) : network_(network) {}
  NetworkQosManager(const NetworkQosManager&) = delete;
  NetworkQosManager& operator=(const NetworkQosManager&) = delete;

  /// Creates (or returns) the RSVP agent for a node. Every node on a
  /// reserved path needs one — including routers.
  net::RsvpAgent& agent(net::NodeId node);

  /// Instantiates agents on every node currently in the network.
  void deploy_agents_everywhere();

  /// End-to-end reservation for `flow` from `src` to `dst`.
  void reserve(net::FlowId flow, net::NodeId src, net::NodeId dst,
               const net::FlowSpec& spec, net::RsvpAgent::ReserveCallback cb);

  /// Renegotiates a live flow's reservation: RSVP re-signals Path/Resv
  /// with the new spec and each hop's admission check replaces the flow's
  /// old rate (install_reservation modify keeps queued packets), so the
  /// flow is never torn down to best effort mid-change. Spelled separately
  /// from reserve() so control-plane call sites read as re-stamps.
  void renegotiate(net::FlowId flow, net::NodeId src, net::NodeId dst,
                   const net::FlowSpec& spec, net::RsvpAgent::ReserveCallback cb) {
    reserve(flow, src, dst, spec, std::move(cb));
  }

  void release(net::FlowId flow, net::NodeId src);

  [[nodiscard]] bool confirmed(net::FlowId flow, net::NodeId src);

 private:
  net::Network& network_;
  std::map<net::NodeId, std::unique_ptr<net::RsvpAgent>> agents_;
};

}  // namespace aqm::core

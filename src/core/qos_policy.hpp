// End-to-end QoS policy: one declarative description covering both of the
// paper's paradigms. A policy can use either paradigm alone or combine
// them ("Ultimately, we suspect that priority- and reservation-based
// approaches will both have their place").
#pragma once

#include <optional>

#include "net/dscp.hpp"
#include "net/packet.hpp"
#include "net/rsvp.hpp"
#include "orb/types.hpp"
#include "os/cpu.hpp"

namespace aqm::core {

struct EndToEndQosPolicy {
  /// Network flow id classifying the binding's traffic. Applied to the
  /// stub (and every invocation) by QoSSession / the QoS-policy
  /// interceptor; reservations require one.
  std::optional<net::FlowId> flow;

  // --- priority-based control (Sections 3.1, 3.2) ---------------------------
  /// CORBA priority for the binding (mapped to native thread priorities on
  /// both hosts via the priority-mapping managers).
  std::optional<orb::CorbaPriority> priority;
  /// Map the CORBA priority onto DiffServ codepoints (installs the banded
  /// DSCP mapping on the client ORB).
  bool map_priority_to_dscp = false;
  /// Explicit DSCP override via protocol properties (wins over the mapping).
  std::optional<net::Dscp> explicit_dscp;

  // --- reservation-based control (Sections 3.3, 3.4) -----------------------
  /// CPU reserve to establish on the *server* host through the CORBA
  /// CPU-reservation manager.
  std::optional<os::ReserveSpec> server_cpu_reserve;
  /// RSVP/IntServ bandwidth reservation for the binding's flow.
  std::optional<net::FlowSpec> network_reservation;

  [[nodiscard]] bool uses_priorities() const {
    return priority.has_value() || map_priority_to_dscp || explicit_dscp.has_value();
  }
  [[nodiscard]] bool uses_reservations() const {
    return server_cpu_reserve.has_value() || network_reservation.has_value();
  }
};

}  // namespace aqm::core

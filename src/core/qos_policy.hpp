// End-to-end QoS policy: one declarative description covering both of the
// paper's paradigms. A policy can use either paradigm alone or combine
// them ("Ultimately, we suspect that priority- and reservation-based
// approaches will both have their place").
#pragma once

#include <cstdint>
#include <optional>

#include "common/time.hpp"
#include "net/dscp.hpp"
#include "net/packet.hpp"
#include "net/rsvp.hpp"
#include "obs/telemetry.hpp"
#include "orb/types.hpp"
#include "os/cpu.hpp"

namespace aqm::core {

/// Transport coalescing policy for the binding's flow: small messages
/// accumulate in the GIOP transport and ship as one wire write, flushed by
/// byte/count thresholds or the deadline — the flush policy is itself QoS
/// (a latency/efficiency trade), so it lives on the end-to-end policy and
/// travels through QoSSession / the interceptor pipeline like priority and
/// DSCP do.
struct OnewayBatchingPolicy {
  std::uint32_t max_bytes = 16 * 1024;
  std::uint32_t max_messages = 64;
  Duration flush_deadline = microseconds(500);

  friend bool operator==(const OnewayBatchingPolicy&, const OnewayBatchingPolicy&) = default;
};

struct EndToEndQosPolicy {
  /// Network flow id classifying the binding's traffic. Applied to the
  /// stub (and every invocation) by QoSSession / the QoS-policy
  /// interceptor; reservations require one.
  std::optional<net::FlowId> flow;

  // --- priority-based control (Sections 3.1, 3.2) ---------------------------
  /// CORBA priority for the binding (mapped to native thread priorities on
  /// both hosts via the priority-mapping managers).
  std::optional<orb::CorbaPriority> priority;
  /// Map the CORBA priority onto DiffServ codepoints (installs the banded
  /// DSCP mapping on the client ORB).
  bool map_priority_to_dscp = false;
  /// Explicit DSCP override via protocol properties (wins over the mapping).
  std::optional<net::Dscp> explicit_dscp;
  /// Per-invocation end-to-end deadline for the binding, stamped by the
  /// QoS-policy interceptor in establish (a caller-pinned InvokeOptions
  /// deadline wins). Rides the deadline service context; bounds retries
  /// and triggers server-side expiry drops like any other deadline.
  std::optional<Duration> deadline;

  // --- reservation-based control (Sections 3.3, 3.4) -----------------------
  /// CPU reserve to establish on the *server* host through the CORBA
  /// CPU-reservation manager.
  std::optional<os::ReserveSpec> server_cpu_reserve;
  /// RSVP/IntServ bandwidth reservation for the binding's flow.
  std::optional<net::FlowSpec> network_reservation;

  // --- transport batching (coalesced writes) --------------------------------
  /// Enables GIOP message coalescing on the binding's flow (requires
  /// `flow`). QoSSession plumbs this to GiopTransport::set_flow_batching;
  /// the flush deadline also rides each invocation through the pipeline's
  /// batch_flush_override slot.
  std::optional<OnewayBatchingPolicy> oneway_batching;

  // --- service-level objective (telemetry contract, DESIGN.md §12) ----------
  /// Windowed SLO for the binding's flow (requires `flow` and a
  /// TelemetryHub attached to the engine). QoSSession installs it on the
  /// hub's SloMonitor; breach/recovery transitions land in the health
  /// stream and cut flight-recorder dumps.
  std::optional<obs::SloSpec> slo;

  [[nodiscard]] bool uses_priorities() const {
    return priority.has_value() || map_priority_to_dscp || explicit_dscp.has_value();
  }
  [[nodiscard]] bool uses_reservations() const {
    return server_cpu_reserve.has_value() || network_reservation.has_value();
  }

  /// Memberwise equality: the re-stamp path (QoSSession::update and the
  /// control plane) diffs old-vs-new per mechanism and only touches the
  /// mechanisms whose parameters actually changed.
  friend bool operator==(const EndToEndQosPolicy&, const EndToEndQosPolicy&) = default;
};

}  // namespace aqm::core

// Global scheduling service.
//
// RT-CORBA pairs its priority machinery with "a global scheduling service"
// that maps application QoS requirements (periods, deadlines, importance)
// onto CORBA priorities, so applications declare *timing needs* and the
// middleware owns the priority arithmetic (TAO's static rate-monotonic
// scheduling strategy [Gill:98i]).
//
// This service implements the static side: declared periodic activities
// get CORBA priorities in rate-monotonic order (shorter period = higher
// priority; importance breaks ties), spread across a configurable band.
// It also answers feasibility questions with the Liu & Layland utilization
// bound and exact response-time analysis for fixed-priority preemptive
// scheduling.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/time.hpp"
#include "orb/types.hpp"

namespace aqm::core {

struct ActivitySpec {
  std::string name;
  Duration period;           // also the implicit deadline
  Duration cost;             // worst-case execution time per period
  int importance = 0;        // tie breaker (higher = more important)
};

struct SchedulingServiceConfig {
  orb::CorbaPriority band_min = 4'000;
  orb::CorbaPriority band_max = 30'000;
};

class SchedulingService {
 public:
  using Config = SchedulingServiceConfig;

  explicit SchedulingService(Config config = {});

  /// Declares (or replaces) an activity. Call assign() afterwards.
  void declare(ActivitySpec spec);
  void remove(const std::string& name);

  /// Recomputes the priority table in rate-monotonic order. Fails (and
  /// assigns nothing new) when the task set is infeasible by exact
  /// response-time analysis.
  Status<std::string> assign();

  /// Priority of an activity after a successful assign().
  [[nodiscard]] std::optional<orb::CorbaPriority> priority_of(const std::string& name) const;

  [[nodiscard]] std::size_t activity_count() const { return activities_.size(); }

  // --- schedulability analysis ---------------------------------------------------

  /// Sum of cost/period over all declared activities. O(1): maintained
  /// incrementally — added on declare, recomputed in name order on remove
  /// or replace so rounding error never accumulates across churn.
  [[nodiscard]] double total_utilization() const { return util_sum_; }

  /// Liu & Layland bound n(2^(1/n) - 1): sufficient, not necessary.
  [[nodiscard]] static double liu_layland_bound(std::size_t n);
  [[nodiscard]] bool feasible_by_bound() const;

  /// Exact test: iterate R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) C_j.
  [[nodiscard]] bool feasible_by_response_time() const;

  /// Worst-case response time of an activity under the RM order, if it
  /// converges within its period; nullopt for unknown/ infeasible tasks.
  [[nodiscard]] std::optional<Duration> worst_case_response(const std::string& name) const;

 private:
  /// Activities in rate-monotonic order (highest priority first).
  [[nodiscard]] std::vector<const ActivitySpec*> rm_order() const;
  [[nodiscard]] static std::optional<Duration> response_time(
      const ActivitySpec& task, const std::vector<const ActivitySpec*>& higher);

  [[nodiscard]] static double utilization_of(const ActivitySpec& spec) {
    return static_cast<double>(spec.cost.ns()) / static_cast<double>(spec.period.ns());
  }
  void recompute_utilization();

  Config config_;
  std::map<std::string, ActivitySpec> activities_;
  std::map<std::string, orb::CorbaPriority> assigned_;
  double util_sum_ = 0.0;
};

}  // namespace aqm::core

// Canonical testbeds replicating the paper's experimental setups, shared
// by benchmarks, integration tests and examples.
//
//  * PriorityTestbed (Figs. 4-6): sender host and cross-traffic host feed a
//    router over fast access links; the router's 10 Mbps egress to the
//    receiver host is the bottleneck. The router egress queue is drop-tail
//    FIFO or DiffServ strict-priority depending on the run.
//
//        sender ---100M--> router ---10M--> receiver
//        cross  ---100M-->   ^
//
//  * ReservationTestbed (Fig. 7 / Table 1): sender and a 43.8 Mbps load
//    source share a switch whose 10 Mbps egress to the receiver carries an
//    IntServ queue; RSVP agents are deployed on every node.
//
//  * AtrTestbed (Table 2): client host sends images over an uncongested
//    100 Mbps link to the ATR server host, whose CPU hosts the resource
//    kernel (reserves) and the competing load generator.
#pragma once

#include <memory>

#include "core/network_qos_manager.hpp"
#include "net/network.hpp"
#include "net/traffic_gen.hpp"
#include "orb/orb.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace aqm::core {

/// Flow ids used consistently across testbeds and benches.
inline constexpr net::FlowId kFlowSender1 = 101;
inline constexpr net::FlowId kFlowSender2 = 102;
inline constexpr net::FlowId kFlowCross = 900;
inline constexpr net::FlowId kFlowVideo = 201;
inline constexpr net::FlowId kFlowImages = 301;

struct PriorityTestbedParams {
  double access_bps = 100e6;
  double bottleneck_bps = 10e6;
  Duration propagation = microseconds(100);
  std::size_t router_queue_pkts = 1000;
  /// false: plain drop-tail FIFO on the bottleneck (control / thread-prio
  /// runs); true: DiffServ-enabled router (DSCP runs).
  bool diffserv_bottleneck = false;
  double cross_rate_bps = 16e6;
  /// Per-trial seed of the cross-traffic generator; override when running
  /// seed sweeps so parallel trials draw independent streams.
  std::uint64_t cross_seed = 42;
  os::CpuConfig cpu{};
};

class PriorityTestbed {
 public:
  explicit PriorityTestbed(const PriorityTestbedParams& params);

  PriorityTestbedParams params;
  sim::Engine engine;
  net::Network network;
  net::NodeId sender_node;
  net::NodeId router_node;
  net::NodeId receiver_node;
  net::NodeId cross_node;
  os::Cpu sender_cpu;
  os::Cpu receiver_cpu;
  orb::OrbEndpoint sender_orb;
  orb::OrbEndpoint receiver_orb;
  std::unique_ptr<net::TrafficGenerator> cross_traffic;  // configured, not started
};

struct ReservationTestbedParams {
  double access_bps = 100e6;
  double bottleneck_bps = 10e6;
  Duration propagation = microseconds(100);
  net::IntServQueue::Config intserv{};
  double load_rate_bps = 43.8e6;
  /// Per-trial seed of the load-pulse generator.
  std::uint64_t load_seed = 43;
  os::CpuConfig cpu{};
};

class ReservationTestbed {
 public:
  explicit ReservationTestbed(const ReservationTestbedParams& params);

  ReservationTestbedParams params;
  sim::Engine engine;
  net::Network network;
  net::NodeId sender_node;
  net::NodeId switch_node;
  net::NodeId receiver_node;
  net::NodeId load_node;
  os::Cpu sender_cpu;
  os::Cpu receiver_cpu;
  orb::OrbEndpoint sender_orb;
  orb::OrbEndpoint receiver_orb;
  NetworkQosManager qos;
  std::unique_ptr<net::TrafficGenerator> load_traffic;  // configured, not started
};

struct AtrTestbedParams {
  double link_bps = 100e6;
  Duration propagation = microseconds(100);
  os::CpuConfig client_cpu{};
  os::CpuConfig server_cpu{};
};

class AtrTestbed {
 public:
  explicit AtrTestbed(const AtrTestbedParams& params);

  AtrTestbedParams params;
  sim::Engine engine;
  net::Network network;
  net::NodeId client_node;
  net::NodeId server_node;
  os::Cpu client_cpu;
  os::Cpu server_cpu;
  orb::OrbEndpoint client_orb;
  orb::OrbEndpoint server_orb;
};

}  // namespace aqm::core

#include "core/qos_session.hpp"

#include <cassert>
#include <memory>
#include <utility>

#include "common/log.hpp"
#include "core/qos_policy_interceptor.hpp"
#include "obs/telemetry.hpp"

namespace aqm::core {

QoSSession::QoSSession(orb::OrbEndpoint& client_orb, orb::ObjectStub& stub,
                       NetworkQosManager* net_qos, CpuReservationClient* cpu_client)
    : client_orb_(client_orb), stub_(stub), net_qos_(net_qos), cpu_client_(cpu_client) {}

void QoSSession::request_network_reservation(const net::FlowSpec& spec) {
  const net::FlowId flow = stub_.flow();
  const net::NodeId src = client_orb_.node();
  ++pending_parts_;
  const std::uint64_t gen = generation_;
  net_qos_->reserve(flow, src, stub_.ref().node, spec,
                    [this, gen, flow, src](Status<std::string> status) {
                      if (gen != generation_) {
                        // The session was revoked or re-stamped while RSVP
                        // signaling was in flight: release the late
                        // reservation instead of recording it.
                        if (status.ok()) net_qos_->release(flow, src);
                        return;
                      }
                      network_reserved_ = status.ok();
                      if (status.ok()) reserved_flow_ = flow;
                      settle_part(std::move(status));
                    });
}

void QoSSession::request_cpu_reserve(const os::ReserveSpec& spec) {
  ++pending_parts_;
  const std::uint64_t gen = generation_;
  cpu_client_->create_reserve(spec, [this, gen](Result<os::ReserveId> result) {
    if (gen != generation_) {
      if (result.ok()) cpu_client_->destroy_reserve(result.value());
      return;
    }
    if (result.ok()) {
      cpu_reserve_ = result.value();
      settle_part({});
    } else {
      settle_part(Status<std::string>::err(result.error()));
    }
  });
}

void QoSSession::apply(EndToEndQosPolicy policy, ApplyCallback cb) {
  policy_ = std::move(policy);
  pending_cb_ = std::move(cb);
  errors_.clear();
  pending_parts_ = 1;  // sentinel for the synchronous part
  ++generation_;       // invalidates callbacks of any prior apply/update

  // --- synchronous, priority-based mechanisms -------------------------------
  // Priority, DSCP, deadline, and flow apply per-invocation through the
  // QoS-policy interceptor bound to this stub's target reference: one
  // atomic binding replaces the old scatter of stub/ORB mutations (and a
  // per-binding banded DSCP mapping no longer leaks onto the ORB's other
  // traffic).
  if (policy_.flow) stub_.set_flow(*policy_.flow);
  QosPolicyInterceptor::install(client_orb_)
      .bind(stub_.ref().node, stub_.ref().object_key, policy_);
  interceptor_bound_ = true;

  // Transport coalescing is flow-scoped wire behavior, applied directly to
  // the client transport (the per-invocation flush override additionally
  // rides through the QoS-policy interceptor).
  if (policy_.oneway_batching) {
    if (!policy_.flow) {
      errors_.emplace_back("oneway batching requires the binding to have a flow id");
    } else {
      orb::BatchPolicy batching;
      batching.enabled = true;
      batching.max_bytes = policy_.oneway_batching->max_bytes;
      batching.max_messages = policy_.oneway_batching->max_messages;
      batching.flush_delay = policy_.oneway_batching->flush_deadline;
      client_orb_.transport().set_flow_batching(*policy_.flow, batching);
      batching_applied_ = true;
      batching_flow_ = *policy_.flow;
    }
  }

  // SLO installation: declarative like the rest of the policy — the spec
  // lands on the engine's telemetry hub, which evaluates it on the flow's
  // sliding window from here on.
  if (policy_.slo) {
    if (!policy_.flow) {
      errors_.emplace_back("SLO monitoring requires the binding to have a flow id");
    } else if (obs::TelemetryHub* th = client_orb_.engine().telemetry()) {
      th->set_slo(*policy_.flow, *policy_.slo);
      slo_applied_ = true;
      slo_flow_ = *policy_.flow;
    } else {
      errors_.emplace_back("SLO monitoring requires a TelemetryHub on the engine");
    }
  }

  // --- asynchronous, reservation-based mechanisms ---------------------------
  if (policy_.network_reservation) {
    if (net_qos_ == nullptr) {
      errors_.emplace_back("network reservation requested without a NetworkQosManager");
    } else if (stub_.flow() == net::kNoFlow) {
      errors_.emplace_back("network reservation requires the binding to have a flow id");
    } else {
      request_network_reservation(*policy_.network_reservation);
    }
  }
  if (policy_.server_cpu_reserve) {
    if (cpu_client_ == nullptr) {
      errors_.emplace_back("CPU reserve requested without a CpuReservationClient");
    } else {
      request_cpu_reserve(*policy_.server_cpu_reserve);
    }
  }

  settle_part({});  // the synchronous sentinel
}

void QoSSession::update(EndToEndQosPolicy policy, ApplyCallback cb) {
  if (!interceptor_bound_) {
    // Nothing live to diff against: a first-time update is a full apply.
    apply(std::move(policy), std::move(cb));
    return;
  }
  pending_cb_ = std::move(cb);
  errors_.clear();
  pending_parts_ = 1;
  ++generation_;
  ++updates_applied_;

  const bool flow_changed = policy.flow != policy_.flow;
  if (flow_changed && policy.flow) stub_.set_flow(*policy.flow);

  // Priority / DSCP / deadline / flow / flush-override: one in-place,
  // allocation-free re-stamp of the versioned binding state. Every later
  // invocation reads the new state; nothing is torn down or rebound.
  QosPolicyInterceptor::install(client_orb_)
      .rebind(stub_.ref().node, stub_.ref().object_key, policy);

  // Batching: untouched (no flush) unless the batching parameters or the
  // flow actually changed. A parameter change flushes the staged batch
  // under the old policy before staging under the new one.
  if (policy.oneway_batching != policy_.oneway_batching || flow_changed) {
    if (batching_applied_) {
      client_orb_.transport().clear_flow_batching(batching_flow_);  // flushes staged
      batching_applied_ = false;
    }
    if (policy.oneway_batching) {
      if (!policy.flow) {
        errors_.emplace_back("oneway batching requires the binding to have a flow id");
      } else {
        orb::BatchPolicy batching;
        batching.enabled = true;
        batching.max_bytes = policy.oneway_batching->max_bytes;
        batching.max_messages = policy.oneway_batching->max_messages;
        batching.flush_delay = policy.oneway_batching->flush_deadline;
        client_orb_.transport().set_flow_batching(*policy.flow, batching);
        batching_applied_ = true;
        batching_flow_ = *policy.flow;
      }
    }
  }

  // SLO: the hub's set_slo is an in-place respec for a monitored flow, so
  // an unchanged-flow SLO change keeps the window history.
  if (policy.slo != policy_.slo || flow_changed) {
    obs::TelemetryHub* th = client_orb_.engine().telemetry();
    if (slo_applied_ && (!policy.slo || !policy.flow || slo_flow_ != *policy.flow)) {
      if (th != nullptr) th->clear_slo(slo_flow_);
      slo_applied_ = false;
    }
    if (policy.slo) {
      if (!policy.flow) {
        errors_.emplace_back("SLO monitoring requires the binding to have a flow id");
      } else if (th != nullptr) {
        th->set_slo(*policy.flow, *policy.slo);
        slo_applied_ = true;
        slo_flow_ = *policy.flow;
      } else {
        errors_.emplace_back("SLO monitoring requires a TelemetryHub on the engine");
      }
    }
  }

  // Network reservation: renegotiate on the live flow (RSVP re-signals
  // with the new spec and each hop's admission replaces the old rate) only
  // when the spec or flow changed; drop it when the new policy has none.
  if (policy.network_reservation != policy_.network_reservation || flow_changed) {
    if (network_reserved_ && net_qos_ != nullptr &&
        (!policy.network_reservation || flow_changed)) {
      net_qos_->release(reserved_flow_, client_orb_.node());
      network_reserved_ = false;
    }
    if (policy.network_reservation) {
      if (net_qos_ == nullptr) {
        errors_.emplace_back("network reservation requested without a NetworkQosManager");
      } else if (stub_.flow() == net::kNoFlow) {
        errors_.emplace_back("network reservation requires the binding to have a flow id");
      } else {
        request_network_reservation(*policy.network_reservation);
      }
    }
  }

  // Server CPU reserve: an existing reserve resizes in place through the
  // manager's update operation — same reserve id, attached jobs stay
  // attached; created/destroyed only on presence transitions.
  if (policy.server_cpu_reserve != policy_.server_cpu_reserve) {
    if (!policy.server_cpu_reserve) {
      if (cpu_reserve_ && cpu_client_ != nullptr) {
        cpu_client_->destroy_reserve(*cpu_reserve_);
        cpu_reserve_.reset();
      }
    } else if (cpu_client_ == nullptr) {
      errors_.emplace_back("CPU reserve requested without a CpuReservationClient");
    } else if (cpu_reserve_) {
      ++pending_parts_;
      const std::uint64_t gen = generation_;
      cpu_client_->update_reserve(*cpu_reserve_, *policy.server_cpu_reserve,
                                  [this, gen](Status<std::string> status) {
                                    if (gen != generation_) return;
                                    settle_part(std::move(status));
                                  });
    } else {
      request_cpu_reserve(*policy.server_cpu_reserve);
    }
  }

  policy_ = std::move(policy);
  settle_part({});
}

void QoSSession::settle_part(Status<std::string> status) {
  if (!status.ok()) errors_.push_back(status.error());
  assert(pending_parts_ > 0);
  if (--pending_parts_ > 0) return;
  if (!pending_cb_) return;
  auto cb = std::move(pending_cb_);
  pending_cb_ = nullptr;
  if (errors_.empty()) {
    cb({});
    return;
  }
  std::string combined;
  for (const auto& e : errors_) {
    if (!combined.empty()) combined += "; ";
    combined += e;
  }
  cb(Status<std::string>::err(combined));
}

void QoSSession::revoke() {
  // Invalidate in-flight signaling first: late callbacks release what they
  // acquired instead of resurrecting state on a revoked session.
  ++generation_;
  pending_cb_ = nullptr;
  pending_parts_ = 0;
  if (network_reserved_ && net_qos_ != nullptr) {
    net_qos_->release(reserved_flow_, client_orb_.node());
    network_reserved_ = false;
  }
  if (cpu_reserve_ && cpu_client_ != nullptr) {
    cpu_client_->destroy_reserve(*cpu_reserve_);
    cpu_reserve_.reset();
  }
  if (interceptor_bound_) {
    if (QosPolicyInterceptor* icpt = QosPolicyInterceptor::find(client_orb_)) {
      icpt->unbind(stub_.ref().node, stub_.ref().object_key);
    }
    interceptor_bound_ = false;
  }
  if (batching_applied_) {
    // Flushes anything still staged, then drops the override.
    client_orb_.transport().clear_flow_batching(batching_flow_);
    batching_applied_ = false;
  }
  if (slo_applied_) {
    if (obs::TelemetryHub* th = client_orb_.engine().telemetry()) {
      th->clear_slo(slo_flow_);
    }
    slo_applied_ = false;
  }
  policy_ = EndToEndQosPolicy{};
}

}  // namespace aqm::core

#include "core/qos_session.hpp"

#include <cassert>
#include <memory>

#include "common/log.hpp"
#include "core/qos_policy_interceptor.hpp"
#include "obs/telemetry.hpp"

namespace aqm::core {

QoSSession::QoSSession(orb::OrbEndpoint& client_orb, orb::ObjectStub& stub,
                       NetworkQosManager* net_qos, CpuReservationClient* cpu_client)
    : client_orb_(client_orb), stub_(stub), net_qos_(net_qos), cpu_client_(cpu_client) {}

void QoSSession::apply(EndToEndQosPolicy policy, ApplyCallback cb) {
  policy_ = std::move(policy);
  pending_cb_ = std::move(cb);
  errors_.clear();
  pending_parts_ = 1;  // sentinel for the synchronous part

  // --- synchronous, priority-based mechanisms -------------------------------
  // Priority, DSCP, and flow apply per-invocation through the QoS-policy
  // interceptor bound to this stub's target reference: one atomic binding
  // replaces the old scatter of stub/ORB mutations (and a per-binding
  // banded DSCP mapping no longer leaks onto the ORB's other traffic).
  if (policy_.flow) stub_.set_flow(*policy_.flow);
  QosPolicyInterceptor::install(client_orb_)
      .bind(stub_.ref().node, stub_.ref().object_key, policy_);

  // Transport coalescing is flow-scoped wire behavior, applied directly to
  // the client transport (the per-invocation flush override additionally
  // rides through the QoS-policy interceptor).
  if (policy_.oneway_batching) {
    if (!policy_.flow) {
      errors_.emplace_back("oneway batching requires the binding to have a flow id");
    } else {
      orb::BatchPolicy batching;
      batching.enabled = true;
      batching.max_bytes = policy_.oneway_batching->max_bytes;
      batching.max_messages = policy_.oneway_batching->max_messages;
      batching.flush_delay = policy_.oneway_batching->flush_deadline;
      client_orb_.transport().set_flow_batching(*policy_.flow, batching);
    }
  }

  // SLO installation: declarative like the rest of the policy — the spec
  // lands on the engine's telemetry hub, which evaluates it on the flow's
  // sliding window from here on.
  if (policy_.slo) {
    if (!policy_.flow) {
      errors_.emplace_back("SLO monitoring requires the binding to have a flow id");
    } else if (obs::TelemetryHub* th = client_orb_.engine().telemetry()) {
      th->set_slo(*policy_.flow, *policy_.slo);
    } else {
      errors_.emplace_back("SLO monitoring requires a TelemetryHub on the engine");
    }
  }

  // --- asynchronous, reservation-based mechanisms ---------------------------
  if (policy_.network_reservation) {
    if (net_qos_ == nullptr) {
      errors_.emplace_back("network reservation requested without a NetworkQosManager");
    } else if (stub_.flow() == net::kNoFlow) {
      errors_.emplace_back("network reservation requires the binding to have a flow id");
    } else {
      ++pending_parts_;
      net_qos_->reserve(stub_.flow(), client_orb_.node(), stub_.ref().node,
                        *policy_.network_reservation,
                        [this](Status<std::string> status) {
                          network_reserved_ = status.ok();
                          settle_part(std::move(status));
                        });
    }
  }
  if (policy_.server_cpu_reserve) {
    if (cpu_client_ == nullptr) {
      errors_.emplace_back("CPU reserve requested without a CpuReservationClient");
    } else {
      ++pending_parts_;
      cpu_client_->create_reserve(
          *policy_.server_cpu_reserve, [this](Result<os::ReserveId> result) {
            if (result.ok()) {
              cpu_reserve_ = result.value();
              settle_part({});
            } else {
              settle_part(Status<std::string>::err(result.error()));
            }
          });
    }
  }

  settle_part({});  // the synchronous sentinel
}

void QoSSession::settle_part(Status<std::string> status) {
  if (!status.ok()) errors_.push_back(status.error());
  assert(pending_parts_ > 0);
  if (--pending_parts_ > 0) return;
  if (!pending_cb_) return;
  auto cb = std::move(pending_cb_);
  pending_cb_ = nullptr;
  if (errors_.empty()) {
    cb({});
    return;
  }
  std::string combined;
  for (const auto& e : errors_) {
    if (!combined.empty()) combined += "; ";
    combined += e;
  }
  cb(Status<std::string>::err(combined));
}

void QoSSession::revoke() {
  if (network_reserved_ && net_qos_ != nullptr) {
    net_qos_->release(stub_.flow(), client_orb_.node());
    network_reserved_ = false;
  }
  if (cpu_reserve_ && cpu_client_ != nullptr) {
    cpu_client_->destroy_reserve(*cpu_reserve_);
    cpu_reserve_.reset();
  }
  if (QosPolicyInterceptor* icpt = QosPolicyInterceptor::find(client_orb_)) {
    icpt->unbind(stub_.ref().node, stub_.ref().object_key);
  }
  if (policy_.oneway_batching && policy_.flow) {
    // Flushes anything still staged, then drops the override.
    client_orb_.transport().clear_flow_batching(*policy_.flow);
  }
  if (policy_.slo && policy_.flow) {
    if (obs::TelemetryHub* th = client_orb_.engine().telemetry()) {
      th->clear_slo(*policy_.flow);
    }
  }
  stub_.clear_priority();
  stub_.ref().protocol.dscp.reset();
  policy_ = EndToEndQosPolicy{};
}

}  // namespace aqm::core

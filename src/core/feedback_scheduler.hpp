// Feedback-driven adaptation loop: the closed-loop half of the runtime
// control plane. Each epoch the scheduler reads every controlled flow's
// measured window stats from the TelemetryHub and re-divides the shared
// resource pools — CPU reserve utilization and HTB link rate — in
// proportion to each flow's smoothed *deficit* (deadline-miss rate, drop
// rate, and p99-latency overshoot, weighted). Flows that are meeting
// their targets drift back toward the equal share; flows falling behind
// are grown at the expense of the comfortable ones. Re-division lands
// through the same idempotent re-stamp primitives the override channel
// uses (os::Cpu::update_reserve, IntServQueue::update_reservation), so a
// controller epoch never tears a binding down.
//
// Determinism contract (DESIGN.md §13): epochs fire at integer multiples
// of the epoch length on the engine clock, flows are visited in ascending
// flow-id order, and the control law is pure arithmetic over the hub's
// deterministic window aggregates — a controlled run is byte-identical
// for any --jobs.
#pragma once

#include <cstdint>
#include <map>

#include "common/result.hpp"
#include "common/time.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "obs/telemetry.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace aqm::core {

struct FeedbackConfig {
  /// Control period; epoch k evaluates at engine time k * epoch.
  Duration epoch = milliseconds(500);
  /// Total CPU utilization (sum C/T) divided among CPU-controlled flows.
  double cpu_pool_utilization = 0.6;
  /// Total link rate (bps) divided among rate-controlled flows.
  double net_pool_bps = 10e6;
  /// Minimum share weight every flow keeps even with zero deficit, as a
  /// fraction of the equal share. Keeps starved-but-healthy flows from
  /// collapsing to nothing and bounds how hard one flow can squeeze the
  /// rest (share_i = (min_share + deficit_i) / sum_j(min_share + deficit_j)).
  double min_share = 0.25;
  /// EWMA weight for the per-epoch deficit (1.0 = no smoothing).
  double smoothing = 0.5;
  /// Relative change below which a re-stamp is skipped — the actuation
  /// dead zone that keeps the controller from thrashing the kernel and
  /// queues over measurement noise.
  double hysteresis = 0.05;
  /// Deficit weights.
  double miss_weight = 1.0;
  double drop_weight = 1.0;
  double latency_weight = 0.5;
  /// p99 latency above this contributes (p99/target - 1) to the deficit.
  double latency_target_ms = 50.0;
};

/// The per-epoch controller. One instance per controlled host/link pool;
/// registrations borrow the kernel/queue/hub, which must outlive the
/// scheduler (or be unregistered first).
class FeedbackScheduler {
 public:
  FeedbackScheduler(sim::Engine& engine, obs::TelemetryHub& hub,
                    FeedbackConfig cfg = {});
  FeedbackScheduler(const FeedbackScheduler&) = delete;
  FeedbackScheduler& operator=(const FeedbackScheduler&) = delete;
  ~FeedbackScheduler();

  [[nodiscard]] const FeedbackConfig& config() const { return cfg_; }

  /// Puts `reserve` (a live reserve on `cpu`) under CPU-share control for
  /// `flow`. Each epoch the flow's share of cpu_pool_utilization is
  /// re-stamped as compute = share * pool * period over the fixed
  /// `period`. Windowed telemetry for the flow (hub.watch) begins at
  /// start(), not here: a registered-but-disabled controller costs the
  /// delivery path nothing.
  void control_cpu(net::FlowId flow, os::Cpu& cpu, os::ReserveId reserve,
                   Duration period, bool hard = false);
  /// Puts `flow`'s reservation on `queue` under rate control: each epoch
  /// the flow's share of net_pool_bps is re-stamped via
  /// update_reservation with the given bucket depth.
  void control_rate(net::FlowId flow, net::IntServQueue& queue,
                    std::uint32_t bucket_bytes);
  void uncontrol(net::FlowId flow);
  [[nodiscard]] bool controls(net::FlowId flow) const {
    return flows_.count(flow) > 0;
  }

  /// Starts the epoch timer: the first epoch fires at the next integer
  /// multiple of cfg.epoch strictly after engine.now(). Idempotent.
  void start();
  void stop();

  /// Runs one control epoch at time `now` (normally called by the timer;
  /// public so tests and benches can step the controller directly).
  /// Allocation-free in steady state.
  void run_epoch(TimePoint now);

  [[nodiscard]] std::uint64_t epochs_run() const { return epochs_run_; }
  [[nodiscard]] std::uint64_t restamps_applied() const { return restamps_applied_; }
  [[nodiscard]] std::uint64_t restamps_rejected() const { return restamps_rejected_; }
  /// The flow's current smoothed deficit (0 when uncontrolled).
  [[nodiscard]] double deficit(net::FlowId flow) const;

 private:
  struct Controlled {
    // CPU actuator (cpu == nullptr when not CPU-controlled).
    os::Cpu* cpu = nullptr;
    os::ReserveId reserve = 0;
    Duration period = Duration::zero();
    bool hard = false;
    std::int64_t applied_compute_ns = 0;  // last re-stamped compute
    // Rate actuator (queue == nullptr when not rate-controlled).
    net::IntServQueue* queue = nullptr;
    std::uint32_t bucket_bytes = 0;
    double applied_rate_bps = 0.0;  // last re-stamped rate
    // Controller state.
    double deficit = 0.0;  // EWMA-smoothed
  };

  [[nodiscard]] double measure_deficit(const obs::WindowStats& w) const;
  void tick(TimePoint now);  // run_epoch + reschedule

  sim::Engine& engine_;
  obs::TelemetryHub& hub_;
  FeedbackConfig cfg_;
  std::map<net::FlowId, Controlled> flows_;  // ascending id = visit order
  bool running_ = false;
  sim::EventId pending_{};
  std::uint64_t epochs_run_ = 0;
  std::uint64_t restamps_applied_ = 0;
  std::uint64_t restamps_rejected_ = 0;  // admission/unknown-flow failures
};

}  // namespace aqm::core

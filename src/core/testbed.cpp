#include "core/testbed.hpp"

#include "net/queue.hpp"

namespace aqm::core {
namespace {

net::LinkConfig link_config(double bps, Duration prop) {
  net::LinkConfig cfg;
  cfg.bandwidth_bps = bps;
  cfg.propagation = prop;
  return cfg;
}

}  // namespace

PriorityTestbed::PriorityTestbed(const PriorityTestbedParams& p)
    : params(p),
      network(engine),
      sender_node(network.add_node("sender")),
      router_node(network.add_node("router")),
      receiver_node(network.add_node("receiver")),
      cross_node(network.add_node("cross-traffic")),
      sender_cpu(engine, "sender-cpu", p.cpu),
      receiver_cpu(engine, "receiver-cpu", p.cpu),
      sender_orb(network, sender_node, sender_cpu),
      receiver_orb(network, receiver_node, receiver_cpu) {
  const auto access = link_config(p.access_bps, p.propagation);
  const auto bottleneck = link_config(p.bottleneck_bps, p.propagation);

  network.add_duplex_link(sender_node, router_node, access);
  network.add_duplex_link(cross_node, router_node, access);
  // Reverse direction (receiver -> router) is never the bottleneck.
  network.add_link(receiver_node, router_node, access);
  // The contended egress: drop-tail or DiffServ per the experiment.
  std::unique_ptr<net::Queue> egress;
  if (p.diffserv_bottleneck) {
    egress = std::make_unique<net::DiffServQueue>(p.router_queue_pkts);
  } else {
    egress = std::make_unique<net::DropTailQueue>(p.router_queue_pkts);
  }
  network.add_link(router_node, receiver_node, bottleneck, std::move(egress));

  // Bursty competing traffic: 2x the nominal rate at a 50% duty cycle
  // (exponential on/off), averaging p.cross_rate_bps. The on-phase
  // overwhelms the bottleneck, the off-phase lets the queue drain — that is
  // what makes Figure 4(b) swing "between a few milliseconds and over a
  // second" rather than pinning at the queue ceiling.
  net::TrafficGenerator::Config cross;
  cross.src = cross_node;
  cross.dst = receiver_node;
  cross.rate_bps = 2.0 * p.cross_rate_bps;
  cross.on_mean = seconds(2);
  cross.off_mean = seconds(2);
  cross.flow = kFlowCross;
  cross.poisson = true;
  cross_traffic = std::make_unique<net::TrafficGenerator>(network, cross, p.cross_seed);
}

ReservationTestbed::ReservationTestbed(const ReservationTestbedParams& p)
    : params(p),
      network(engine),
      sender_node(network.add_node("sender")),
      switch_node(network.add_node("switch")),
      receiver_node(network.add_node("receiver")),
      load_node(network.add_node("load-source")),
      sender_cpu(engine, "sender-cpu", p.cpu),
      receiver_cpu(engine, "receiver-cpu", p.cpu),
      sender_orb(network, sender_node, sender_cpu),
      receiver_orb(network, receiver_node, receiver_cpu),
      qos(network) {
  const auto access = link_config(p.access_bps, p.propagation);
  const auto bottleneck = link_config(p.bottleneck_bps, p.propagation);

  // Sender's own egress also carries an IntServ queue: the first hop of the
  // reserved path.
  network.add_link(sender_node, switch_node, access,
                   std::make_unique<net::IntServQueue>(p.intserv));
  network.add_link(switch_node, sender_node, access);
  network.add_duplex_link(load_node, switch_node, access);
  network.add_link(switch_node, receiver_node, bottleneck,
                   std::make_unique<net::IntServQueue>(p.intserv));
  network.add_link(receiver_node, switch_node, access);

  // RSVP agents on every hop of the data path (and the load host, harmlessly).
  qos.deploy_agents_everywhere();

  net::TrafficGenerator::Config load;
  load.src = load_node;
  load.dst = receiver_node;
  load.rate_bps = p.load_rate_bps;
  load.flow = kFlowCross;
  load.poisson = true;
  load_traffic = std::make_unique<net::TrafficGenerator>(network, load, p.load_seed);
}

AtrTestbed::AtrTestbed(const AtrTestbedParams& p)
    : params(p),
      network(engine),
      client_node(network.add_node("client")),
      server_node(network.add_node("atr-server")),
      client_cpu(engine, "client-cpu", p.client_cpu),
      server_cpu(engine, "server-cpu", p.server_cpu),
      client_orb(network, client_node, client_cpu),
      server_orb(network, server_node, server_cpu) {
  network.add_duplex_link(client_node, server_node,
                          link_config(p.link_bps, p.propagation));
}

}  // namespace aqm::core

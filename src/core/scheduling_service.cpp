#include "core/scheduling_service.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aqm::core {

SchedulingService::SchedulingService(Config config) : config_(config) {
  assert(config_.band_min < config_.band_max);
}

void SchedulingService::declare(ActivitySpec spec) {
  assert(!spec.name.empty());
  assert(spec.period > Duration::zero());
  assert(spec.cost > Duration::zero());
  assert(spec.cost <= spec.period);
  const double util = utilization_of(spec);
  const bool replacing = activities_.count(spec.name) > 0;
  activities_[spec.name] = std::move(spec);
  if (replacing) {
    recompute_utilization();  // old term drops out; re-sum, don't subtract
  } else {
    util_sum_ += util;
  }
}

void SchedulingService::remove(const std::string& name) {
  if (activities_.erase(name) > 0) recompute_utilization();
  assigned_.erase(name);
}

void SchedulingService::recompute_utilization() {
  util_sum_ = 0.0;
  for (const auto& [name, spec] : activities_) util_sum_ += utilization_of(spec);
}

std::vector<const ActivitySpec*> SchedulingService::rm_order() const {
  std::vector<const ActivitySpec*> order;
  order.reserve(activities_.size());
  for (const auto& [name, spec] : activities_) order.push_back(&spec);
  std::sort(order.begin(), order.end(), [](const ActivitySpec* a, const ActivitySpec* b) {
    if (a->period != b->period) return a->period < b->period;  // RM: shorter first
    if (a->importance != b->importance) return a->importance > b->importance;
    return a->name < b->name;
  });
  return order;
}

std::optional<Duration> SchedulingService::response_time(
    const ActivitySpec& task, const std::vector<const ActivitySpec*>& higher) {
  // Fixed-point iteration: R = C + sum ceil(R / T_j) * C_j.
  Duration r = task.cost;
  for (int iterations = 0; iterations < 1000; ++iterations) {
    std::int64_t interference_ns = 0;
    for (const ActivitySpec* h : higher) {
      const std::int64_t activations =
          (r.ns() + h->period.ns() - 1) / h->period.ns();  // ceil
      interference_ns += activations * h->cost.ns();
    }
    const Duration next = task.cost + Duration{interference_ns};
    if (next == r) return r;          // converged
    if (next > task.period) return std::nullopt;  // deadline miss
    r = next;
  }
  return std::nullopt;
}

Status<std::string> SchedulingService::assign() {
  const auto order = rm_order();

  // Exact feasibility first: refuse to hand out priorities for a task set
  // that cannot meet its deadlines.
  std::vector<const ActivitySpec*> higher;
  for (const ActivitySpec* task : order) {
    if (!response_time(*task, higher)) {
      return Status<std::string>::err("task set infeasible: '" + task->name +
                                      "' misses its deadline under RM");
    }
    higher.push_back(task);
  }

  assigned_.clear();
  if (order.empty()) return {};
  // Spread priorities across the band, highest first.
  const auto n = static_cast<std::int64_t>(order.size());
  const std::int64_t span = config_.band_max - config_.band_min;
  for (std::int64_t i = 0; i < n; ++i) {
    const orb::CorbaPriority p =
        n == 1 ? config_.band_max
               : static_cast<orb::CorbaPriority>(config_.band_max - span * i / (n - 1));
    assigned_[order[static_cast<std::size_t>(i)]->name] = p;
  }
  return {};
}

std::optional<orb::CorbaPriority> SchedulingService::priority_of(
    const std::string& name) const {
  const auto it = assigned_.find(name);
  if (it == assigned_.end()) return std::nullopt;
  return it->second;
}

double SchedulingService::liu_layland_bound(std::size_t n) {
  if (n == 0) return 0.0;
  const double nd = static_cast<double>(n);
  return nd * (std::pow(2.0, 1.0 / nd) - 1.0);
}

bool SchedulingService::feasible_by_bound() const {
  return total_utilization() <= liu_layland_bound(activities_.size());
}

bool SchedulingService::feasible_by_response_time() const {
  const auto order = rm_order();
  std::vector<const ActivitySpec*> higher;
  for (const ActivitySpec* task : order) {
    if (!response_time(*task, higher)) return false;
    higher.push_back(task);
  }
  return true;
}

std::optional<Duration> SchedulingService::worst_case_response(
    const std::string& name) const {
  const auto order = rm_order();
  std::vector<const ActivitySpec*> higher;
  for (const ActivitySpec* task : order) {
    if (task->name == name) return response_time(*task, higher);
    higher.push_back(task);
  }
  return std::nullopt;
}

}  // namespace aqm::core

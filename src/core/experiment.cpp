#include "core/experiment.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace aqm::core {
namespace {

bool parse_jobs_value(const char* text, unsigned& out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (end == nullptr || *end != '\0' || v > 4096) return false;
  out = static_cast<unsigned>(v);
  return true;
}

[[noreturn]] void jobs_usage_error(const char* arg) {
  std::fprintf(stderr, "invalid --jobs argument: %s (expected --jobs N with N in 0..4096; 0 = all cores)\n",
               arg);
  std::exit(2);
}

bool parse_partitions_value(const char* text, unsigned& out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (end == nullptr || *end != '\0' || v < 1 || v > 64) return false;
  out = static_cast<unsigned>(v);
  return true;
}

[[noreturn]] void partitions_usage_error(const char* arg) {
  std::fprintf(stderr,
               "invalid --partitions argument: %s (expected --partitions N with N in 1..64)\n",
               arg);
  std::exit(2);
}

}  // namespace

namespace detail {
void report_trial_done(bool enabled) {
  if (!enabled) return;
  // Progress goes to stderr so the experiment's stdout stays a clean,
  // deterministic report regardless of trial completion order.
  std::fputc('.', stderr);
  std::fflush(stderr);
}
}  // namespace detail

ExperimentOptions parse_experiment_options(int& argc, char** argv) {
  ExperimentOptions opts;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    bool value_in_next = false;
    bool is_partitions = false;
    std::string* path_target = nullptr;
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      value = arg + 7;
    } else if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) {
      value_in_next = true;
    } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
      value = arg + 2;
    } else if (std::strncmp(arg, "--partitions=", 13) == 0) {
      value = arg + 13;
      is_partitions = true;
    } else if (std::strcmp(arg, "--partitions") == 0 || std::strcmp(arg, "-p") == 0) {
      value_in_next = true;
      is_partitions = true;
    } else if (std::strncmp(arg, "-p", 2) == 0 && arg[2] != '\0') {
      value = arg + 2;
      is_partitions = true;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      value = arg + 8;
      path_target = &opts.trace_path;
    } else if (std::strcmp(arg, "--trace") == 0) {
      value_in_next = true;
      path_target = &opts.trace_path;
    } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
      value = arg + 10;
      path_target = &opts.metrics_path;
    } else if (std::strcmp(arg, "--metrics") == 0) {
      value_in_next = true;
      path_target = &opts.metrics_path;
    } else if (std::strncmp(arg, "--slo=", 6) == 0) {
      value = arg + 6;
      path_target = &opts.slo_path;
    } else if (std::strcmp(arg, "--slo") == 0) {
      value_in_next = true;
      path_target = &opts.slo_path;
    } else if (std::strncmp(arg, "--flight=", 9) == 0) {
      value = arg + 9;
      path_target = &opts.flight_path;
    } else if (std::strcmp(arg, "--flight") == 0) {
      value_in_next = true;
      path_target = &opts.flight_path;
    } else {
      argv[out++] = argv[i];
      continue;
    }
    if (value_in_next) {
      if (i + 1 >= argc) {
        if (path_target != nullptr) {
          std::fprintf(stderr, "missing file argument after %s\n", arg);
          std::exit(2);
        }
        if (is_partitions) partitions_usage_error(arg);
        jobs_usage_error(arg);
      }
      value = argv[++i];
    }
    if (path_target != nullptr) {
      if (value == nullptr || *value == '\0') {
        std::fprintf(stderr, "missing file argument after %s\n", arg);
        std::exit(2);
      }
      *path_target = value;
    } else if (is_partitions) {
      if (!parse_partitions_value(value, opts.partitions)) partitions_usage_error(value);
    } else if (!parse_jobs_value(value, opts.jobs)) {
      jobs_usage_error(value);
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return opts;
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  // splitmix64 finalizer over (base + golden-ratio stride * (index + 1)).
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace aqm::core

// Experiment: a declarative list of independent simulation trials executed
// through the shard-parallel runner.
//
// A driver describes each trial as (name, seed, factory-function); run()
// fans the trials out across worker threads and returns the results in
// add() order. Determinism contract: a trial function must construct every
// stateful object it uses (Engine, Network, testbed, generators) locally
// and take all randomness from spec.seed — then results are byte-identical
// for any --jobs value, because each result is computed by exactly one
// single-threaded simulation and written to a slot owned by its index.
//
// Drivers accept `--jobs N` (or `-jN`) and `--partitions N` (or `-pN`)
// via parse_experiment_options().
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/parallel_runner.hpp"

namespace aqm::core {

struct TrialSpec {
  std::string name;        // stable label, used by drivers when printing
  std::uint64_t seed = 0;  // sole randomness input of the trial
  std::size_t index = 0;   // position in the experiment (assigned by add())
};

struct ExperimentOptions {
  /// Worker threads; 0 = one per hardware thread, 1 = inline (no threads).
  unsigned jobs = 1;
  /// Partitions per simulated world (DESIGN.md §14); 1 = the verbatim
  /// single-threaded engine. Drivers that shard their world honour this;
  /// others accept and ignore it (the flag is parsed either way so every
  /// driver can be invoked uniformly from CI diff checks).
  unsigned partitions = 1;
  /// Print one '.' to stderr as each trial finishes (multi-trial runs only).
  bool progress = true;
  /// Non-empty: drivers that support tracing write a Chrome trace-event
  /// JSON (load in Perfetto / chrome://tracing) of an instrumented trial.
  std::string trace_path;
  /// Non-empty: drivers that support metrics write the per-trial + merged
  /// metrics sidecar JSON here.
  std::string metrics_path;
  /// Non-empty: drivers that support SLO monitoring write the per-trial +
  /// merged health-event sidecar JSON here.
  std::string slo_path;
  /// Non-empty: drivers that support the flight recorder write the breach
  /// dump sidecar JSON here.
  std::string flight_path;
};

/// Parses and strips `--jobs N`, `--jobs=N`, `-jN`, `-j N`,
/// `--partitions N`, `--partitions=N`, `-pN`, `-p N`,
/// `--trace FILE`, `--trace=FILE`, `--metrics FILE`, `--metrics=FILE`,
/// `--slo FILE`, `--slo=FILE`, `--flight FILE` and `--flight=FILE`
/// from an argv-style array (argc is updated). Unrecognised arguments are
/// left in place; an unparsable value prints an error and exits.
ExperimentOptions parse_experiment_options(int& argc, char** argv);

/// Decorrelates a per-trial seed from an experiment base seed and a trial
/// index (splitmix64 finalizer), so sweeps get independent streams without
/// hand-picking constants.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

namespace detail {
void report_trial_done(bool enabled);
}  // namespace detail

template <typename Result>
class Experiment {
 public:
  using TrialFn = std::function<Result(const TrialSpec&)>;

  /// Registers a trial. Trials run in any order but results keep add() order.
  void add(std::string name, std::uint64_t seed, TrialFn fn) {
    TrialSpec spec;
    spec.name = std::move(name);
    spec.seed = seed;
    spec.index = trials_.size();
    trials_.push_back(Trial{std::move(spec), std::move(fn)});
  }

  [[nodiscard]] std::size_t size() const { return trials_.size(); }
  [[nodiscard]] const TrialSpec& spec(std::size_t i) const { return trials_[i].spec; }

  /// Runs every trial and returns the results in add() order. Each worker
  /// writes only the slot of the trial index it pulled, so the merge needs
  /// no locking and the output is independent of the worker count.
  [[nodiscard]] std::vector<Result> run(const ExperimentOptions& opts = {}) const {
    std::vector<std::optional<Result>> slots(trials_.size());
    const sim::ParallelRunner runner(opts.jobs);
    const bool progress = opts.progress && trials_.size() > 1;
    runner.run(trials_.size(), [&](std::size_t i) {
      slots[i] = trials_[i].fn(trials_[i].spec);
      detail::report_trial_done(progress);
    });
    std::vector<Result> out;
    out.reserve(slots.size());
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  struct Trial {
    TrialSpec spec;
    TrialFn fn;
  };
  std::vector<Trial> trials_;
};

}  // namespace aqm::core

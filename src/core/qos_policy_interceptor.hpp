// Client-side interceptor that applies EndToEndQosPolicy decisions to every
// invocation of a bound object reference — the pipeline half of QoSSession.
//
// One instance is installed per client OrbEndpoint (find-or-install by
// name) and holds the per-binding policies, keyed by (target node, object
// key). In the establish phase it rewrites the invocation's QoS slots
// atomically: priority (unless the caller pinned one), DSCP (explicit
// override or a per-binding banded priority->DSCP mapping), and flow id.
// Reservations stay in QoSSession::apply — they are per-binding signaling,
// not per-invocation work.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "core/qos_policy.hpp"
#include "orb/interceptor.hpp"
#include "orb/rt/dscp_mapping.hpp"

namespace aqm::orb {
class OrbEndpoint;
}  // namespace aqm::orb

namespace aqm::core {

/// Versioned policy state of one live binding. Interceptor stages read the
/// *current* state per invocation — never captured constants — so a
/// control-plane re-stamp (QoSSession::update, QosControlPlane overrides)
/// takes effect on the very next invocation without rebinding. The version
/// counter increments on every re-stamp; tests and the control plane use
/// it to confirm a live update landed (and that an idempotent re-apply of
/// identical parameters still counts as a stamp, not a rebind).
struct QosBindingState {
  EndToEndQosPolicy policy;
  std::uint64_t version = 0;
};

class QosPolicyInterceptor final : public orb::ClientRequestInterceptor {
 public:
  static constexpr const char* kName = "core.qos_policy";

  [[nodiscard]] const char* name() const override { return kName; }

  /// Returns the endpoint's installed instance, registering one on first use.
  static QosPolicyInterceptor& install(orb::OrbEndpoint& orb);
  /// Returns the endpoint's instance, or nullptr when none was installed.
  [[nodiscard]] static QosPolicyInterceptor* find(orb::OrbEndpoint& orb);

  /// Binds (or re-stamps) the policy governing invocations of the given
  /// target reference. An existing binding is mutated in place — the
  /// version bumps, map nodes are reused, and the steady-state re-stamp
  /// path allocates nothing (EndToEndQosPolicy is allocation-free to copy).
  void bind(net::NodeId node, std::string object_key, EndToEndQosPolicy policy);
  /// Allocation-free re-stamp of an existing binding: returns false (and
  /// changes nothing) when the target has no binding, so callers that may
  /// race a teardown fall back to bind().
  bool rebind(net::NodeId node, std::string_view object_key,
              const EndToEndQosPolicy& policy);
  void unbind(net::NodeId node, std::string_view object_key);

  /// The bound policy for a target, or nullptr.
  [[nodiscard]] const EndToEndQosPolicy* binding(net::NodeId node,
                                                 std::string_view object_key) const;
  /// The versioned binding state for a target, or nullptr.
  [[nodiscard]] const QosBindingState* binding_state(net::NodeId node,
                                                     std::string_view object_key) const;
  /// The DSCP override this interceptor would stamp on an invocation of
  /// the target at `priority` (nullopt: fall through to the ORB mapping).
  [[nodiscard]] std::optional<net::Dscp> effective_dscp(net::NodeId node,
                                                        std::string_view object_key,
                                                        orb::CorbaPriority priority) const;

  orb::InterceptStatus establish(orb::ClientRequestContext& ctx) override;

 private:
  struct Binding {
    QosBindingState state;
    /// Per-binding priority->DSCP bands (used iff policy.map_priority_to_dscp),
    /// so one binding's mapping never leaks onto other traffic of the ORB.
    orb::rt::BandedDscpMapping banded;
  };

  [[nodiscard]] const Binding* lookup(net::NodeId node, std::string_view object_key) const;
  [[nodiscard]] Binding* lookup_mut(net::NodeId node, std::string_view object_key);

  // Nested maps with a transparent inner comparator: the establish-phase
  // lookup takes a string_view and allocates nothing.
  std::map<net::NodeId, std::map<std::string, Binding, std::less<>>> bindings_;
};

}  // namespace aqm::core

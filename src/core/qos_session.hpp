// QoSSession: applies an EndToEndQosPolicy to one client->object binding,
// coordinating all four mechanisms (thread priorities, DSCPs, CPU
// reserves, RSVP reservations) from the middleware's end-to-end vantage
// point. This is the integration layer the paper contributes.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/cpu_reservation_manager.hpp"
#include "core/network_qos_manager.hpp"
#include "core/qos_policy.hpp"
#include "orb/orb.hpp"

namespace aqm::core {

class QoSSession {
 public:
  using ApplyCallback = std::function<void(Status<std::string>)>;

  /// `stub` is the client-side binding the policy governs; it must outlive
  /// the session. `net_qos` is required for network reservations,
  /// `cpu_client` for server CPU reserves.
  QoSSession(orb::OrbEndpoint& client_orb, orb::ObjectStub& stub,
             NetworkQosManager* net_qos = nullptr,
             CpuReservationClient* cpu_client = nullptr);

  /// Applies the policy. The callback fires once every asynchronous
  /// mechanism (RSVP signaling, remote reserve creation) settles; partial
  /// failures are reported with the combined error text while successful
  /// mechanisms stay in force.
  void apply(EndToEndQosPolicy policy, ApplyCallback cb = nullptr);

  /// Releases reservations and restores best-effort defaults.
  void revoke();

  [[nodiscard]] const EndToEndQosPolicy& active_policy() const { return policy_; }
  [[nodiscard]] bool network_reserved() const { return network_reserved_; }
  [[nodiscard]] std::optional<os::ReserveId> cpu_reserve_id() const { return cpu_reserve_; }

 private:
  void settle_part(Status<std::string> status);

  orb::OrbEndpoint& client_orb_;
  orb::ObjectStub& stub_;
  NetworkQosManager* net_qos_;
  CpuReservationClient* cpu_client_;

  EndToEndQosPolicy policy_;
  ApplyCallback pending_cb_;
  int pending_parts_ = 0;
  std::vector<std::string> errors_;
  bool network_reserved_ = false;
  std::optional<os::ReserveId> cpu_reserve_;
};

}  // namespace aqm::core

// QoSSession: applies an EndToEndQosPolicy to one client->object binding,
// coordinating all four mechanisms (thread priorities, DSCPs, CPU
// reserves, RSVP reservations) from the middleware's end-to-end vantage
// point. This is the integration layer the paper contributes.
//
// Policies are runtime-rebindable: update() diffs the active policy
// against a new one and re-stamps only the mechanisms whose parameters
// changed — priority/DSCP/deadline/batching flip in place through the
// versioned interceptor binding, CPU reserves resize without
// detach-reattach, and network reservations renegotiate on the live flow
// (RSVP modify). The session tracks which stages actually applied, so
// revoke() after a partial failure (or while signaling is still in
// flight) releases exactly what exists and nothing else.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/cpu_reservation_manager.hpp"
#include "core/network_qos_manager.hpp"
#include "core/qos_policy.hpp"
#include "orb/orb.hpp"

namespace aqm::core {

class QoSSession {
 public:
  using ApplyCallback = std::function<void(Status<std::string>)>;

  /// `stub` is the client-side binding the policy governs; it must outlive
  /// the session. `net_qos` is required for network reservations,
  /// `cpu_client` for server CPU reserves.
  QoSSession(orb::OrbEndpoint& client_orb, orb::ObjectStub& stub,
             NetworkQosManager* net_qos = nullptr,
             CpuReservationClient* cpu_client = nullptr);

  /// Applies the policy. The callback fires once every asynchronous
  /// mechanism (RSVP signaling, remote reserve creation) settles; partial
  /// failures are reported with the combined error text while successful
  /// mechanisms stay in force.
  void apply(EndToEndQosPolicy policy, ApplyCallback cb = nullptr);

  /// Live re-stamp: diffs the active policy against `policy` and applies
  /// only the delta, without tearing the binding down. Priority, DSCP,
  /// deadline, and flow re-stamp in place through the versioned
  /// interceptor binding (allocation-free); batching is flushed and
  /// re-staged only when its parameters changed; an existing CPU reserve
  /// resizes via update_reserve (no detach-reattach); a changed network
  /// reservation renegotiates on the live flow (RSVP modify). Mechanisms
  /// whose parameters are unchanged are not touched at all, so re-applying
  /// the active policy is a no-op (idempotent). The callback fires when
  /// every re-signaled mechanism settles.
  void update(EndToEndQosPolicy policy, ApplyCallback cb = nullptr);

  /// Releases what actually applied and restores best-effort defaults.
  /// Safe after a partial apply failure: only the stages that took effect
  /// are torn down, and asynchronous reservations still in flight are
  /// released the moment they land instead of leaking.
  void revoke();

  [[nodiscard]] const EndToEndQosPolicy& active_policy() const { return policy_; }
  [[nodiscard]] bool network_reserved() const { return network_reserved_; }
  [[nodiscard]] std::optional<os::ReserveId> cpu_reserve_id() const { return cpu_reserve_; }
  /// Number of update() re-stamps applied over the session's lifetime.
  [[nodiscard]] std::uint64_t updates_applied() const { return updates_applied_; }

 private:
  void settle_part(Status<std::string> status);
  void request_network_reservation(const net::FlowSpec& spec);
  void request_cpu_reserve(const os::ReserveSpec& spec);

  orb::OrbEndpoint& client_orb_;
  orb::ObjectStub& stub_;
  NetworkQosManager* net_qos_;
  CpuReservationClient* cpu_client_;

  EndToEndQosPolicy policy_;
  ApplyCallback pending_cb_;
  int pending_parts_ = 0;
  std::vector<std::string> errors_;

  // --- applied-stage ledger --------------------------------------------------
  // revoke() consults these, never the policy: a stage that failed to apply
  // (or was never requested) is not torn down, and a stage applied under an
  // earlier flow id is torn down under that id even if the policy moved on.
  bool network_reserved_ = false;
  std::optional<os::ReserveId> cpu_reserve_;
  bool interceptor_bound_ = false;
  bool batching_applied_ = false;
  bool slo_applied_ = false;
  net::FlowId reserved_flow_ = net::kNoFlow;
  net::FlowId batching_flow_ = net::kNoFlow;
  net::FlowId slo_flow_ = net::kNoFlow;
  /// Generation counter bumped by apply/update/revoke. Asynchronous
  /// callbacks capture the generation they were issued under; a stale
  /// callback releases the resource it acquired instead of recording it,
  /// so revoke() during in-flight signaling can never leak a reservation.
  std::uint64_t generation_ = 0;
  std::uint64_t updates_applied_ = 0;
};

}  // namespace aqm::core

#include "core/cpu_reservation_manager.hpp"

#include "orb/cdr.hpp"
#include "orb/servant.hpp"

namespace aqm::core {
namespace {

std::vector<std::uint8_t> encode_create_request(const os::ReserveSpec& spec) {
  orb::CdrWriter w;
  w.write_i64(spec.compute.ns());
  w.write_i64(spec.period.ns());
  w.write_bool(spec.hard);
  return w.take();
}

os::ReserveSpec decode_create_request(const std::vector<std::uint8_t>& body) {
  orb::CdrReader r(body);
  os::ReserveSpec spec;
  spec.compute = Duration{r.read_i64()};
  spec.period = Duration{r.read_i64()};
  spec.hard = r.read_bool();
  return spec;
}

std::vector<std::uint8_t> encode_create_reply(const Result<os::ReserveId>& result) {
  orb::CdrWriter w;
  w.write_bool(result.ok());
  if (result.ok()) {
    w.write_u64(result.value());
  } else {
    w.write_string(result.error());
  }
  return w.take();
}

Result<os::ReserveId> decode_create_reply(const std::vector<std::uint8_t>& body) {
  orb::CdrReader r(body);
  if (r.read_bool()) return Result<os::ReserveId>{r.read_u64()};
  return Result<os::ReserveId>::err(r.read_string());
}

std::vector<std::uint8_t> encode_update_request(os::ReserveId id,
                                                const os::ReserveSpec& spec) {
  orb::CdrWriter w;
  w.write_u64(id);
  w.write_i64(spec.compute.ns());
  w.write_i64(spec.period.ns());
  w.write_bool(spec.hard);
  return w.take();
}

std::vector<std::uint8_t> encode_status_reply(const Status<std::string>& status) {
  orb::CdrWriter w;
  w.write_bool(status.ok());
  if (!status.ok()) w.write_string(status.error());
  return w.take();
}

Status<std::string> decode_status_reply(const std::vector<std::uint8_t>& body) {
  orb::CdrReader r(body);
  if (r.read_bool()) return {};
  return Status<std::string>::err(r.read_string());
}

}  // namespace

CpuReservationManagerServer::CpuReservationManagerServer(orb::Poa& poa, os::Cpu& cpu) {
  // Reservation signaling is control-plane work: cheap and fast.
  auto servant = std::make_shared<orb::FunctionServant>(
      microseconds(30), [&cpu](orb::ServerRequest& req) {
        if (req.operation == kCreateReserveOp) {
          const os::ReserveSpec spec = decode_create_request(req.body);
          req.reply_body = encode_create_reply(cpu.create_reserve(spec));
          return;
        }
        if (req.operation == kUpdateReserveOp) {
          orb::CdrReader r(req.body);
          const os::ReserveId id = r.read_u64();
          os::ReserveSpec spec;
          spec.compute = Duration{r.read_i64()};
          spec.period = Duration{r.read_i64()};
          spec.hard = r.read_bool();
          req.reply_body = encode_status_reply(cpu.update_reserve(id, spec));
          return;
        }
        if (req.operation == kDestroyReserveOp) {
          orb::CdrReader r(req.body);
          cpu.destroy_reserve(r.read_u64());
          orb::CdrWriter w;
          w.write_bool(true);
          req.reply_body = w.take();
          return;
        }
        if (req.operation == kQueryUtilizationOp) {
          orb::CdrWriter w;
          w.write_f64(cpu.reserved_utilization());
          req.reply_body = w.take();
          return;
        }
        throw orb::BadParam("unknown reservation-manager operation: " + req.operation);
      });
  ref_ = poa.activate_object(kCpuReserveManagerObjectId, std::move(servant));
}

CpuReservationClient::CpuReservationClient(orb::OrbEndpoint& orb, orb::ObjectRef manager)
    : stub_(orb, std::move(manager)) {}

void CpuReservationClient::create_reserve(const os::ReserveSpec& spec, CreateCallback cb,
                                          Duration timeout) {
  stub_.twoway(kCreateReserveOp, encode_create_request(spec),
               [cb = std::move(cb)](orb::CompletionStatus status,
                                    std::vector<std::uint8_t> body) {
                 if (status != orb::CompletionStatus::Ok) {
                   cb(Result<os::ReserveId>::err(std::string("rpc failed: ") +
                                                 orb::to_string(status)));
                   return;
                 }
                 try {
                   cb(decode_create_reply(body));
                 } catch (const orb::MarshalError& e) {
                   cb(Result<os::ReserveId>::err(e.what()));
                 }
               },
               timeout);
}

void CpuReservationClient::update_reserve(os::ReserveId id, const os::ReserveSpec& spec,
                                          UpdateCallback cb, Duration timeout) {
  stub_.twoway(kUpdateReserveOp, encode_update_request(id, spec),
               [cb = std::move(cb)](orb::CompletionStatus status,
                                    std::vector<std::uint8_t> body) {
                 if (status != orb::CompletionStatus::Ok) {
                   cb(Status<std::string>::err(std::string("rpc failed: ") +
                                               orb::to_string(status)));
                   return;
                 }
                 try {
                   cb(decode_status_reply(body));
                 } catch (const orb::MarshalError& e) {
                   cb(Status<std::string>::err(e.what()));
                 }
               },
               timeout);
}

void CpuReservationClient::destroy_reserve(os::ReserveId id, DestroyCallback cb,
                                           Duration timeout) {
  orb::CdrWriter w;
  w.write_u64(id);
  stub_.twoway(kDestroyReserveOp, w.take(),
               [cb = std::move(cb)](orb::CompletionStatus status,
                                    std::vector<std::uint8_t>) {
                 if (cb) cb(status == orb::CompletionStatus::Ok);
               },
               timeout);
}

void CpuReservationClient::query_utilization(UtilizationCallback cb, Duration timeout) {
  stub_.twoway(kQueryUtilizationOp, {},
               [cb = std::move(cb)](orb::CompletionStatus status,
                                    std::vector<std::uint8_t> body) {
                 if (status != orb::CompletionStatus::Ok) {
                   cb(Result<double>::err(std::string("rpc failed: ") +
                                          orb::to_string(status)));
                   return;
                 }
                 try {
                   orb::CdrReader r(body);
                   cb(Result<double>{r.read_f64()});
                 } catch (const orb::MarshalError& e) {
                   cb(Result<double>::err(e.what()));
                 }
               },
               timeout);
}

}  // namespace aqm::core

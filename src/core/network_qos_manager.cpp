#include "core/network_qos_manager.hpp"

namespace aqm::core {

net::RsvpAgent& NetworkQosManager::agent(net::NodeId node) {
  auto it = agents_.find(node);
  if (it == agents_.end()) {
    it = agents_.emplace(node, std::make_unique<net::RsvpAgent>(network_, node)).first;
  }
  return *it->second;
}

void NetworkQosManager::deploy_agents_everywhere() {
  for (net::NodeId n = 0; n < static_cast<net::NodeId>(network_.node_count()); ++n) {
    agent(n);
  }
}

void NetworkQosManager::reserve(net::FlowId flow, net::NodeId src, net::NodeId dst,
                                const net::FlowSpec& spec,
                                net::RsvpAgent::ReserveCallback cb) {
  agent(src).reserve(flow, dst, spec, std::move(cb));
}

void NetworkQosManager::release(net::FlowId flow, net::NodeId src) {
  agent(src).release(flow);
}

bool NetworkQosManager::confirmed(net::FlowId flow, net::NodeId src) {
  return agent(src).confirmed(flow);
}

}  // namespace aqm::core

#include "core/qos_policy_interceptor.hpp"

#include "orb/orb.hpp"

namespace aqm::core {

QosPolicyInterceptor& QosPolicyInterceptor::install(orb::OrbEndpoint& orb) {
  if (QosPolicyInterceptor* existing = find(orb)) return *existing;
  return static_cast<QosPolicyInterceptor&>(
      orb.add_client_interceptor(std::make_unique<QosPolicyInterceptor>()));
}

QosPolicyInterceptor* QosPolicyInterceptor::find(orb::OrbEndpoint& orb) {
  return static_cast<QosPolicyInterceptor*>(orb.find_client_interceptor(kName));
}

void QosPolicyInterceptor::bind(net::NodeId node, std::string object_key,
                                EndToEndQosPolicy policy) {
  Binding binding;
  binding.policy = std::move(policy);
  bindings_[node].insert_or_assign(std::move(object_key), std::move(binding));
}

void QosPolicyInterceptor::unbind(net::NodeId node, std::string_view object_key) {
  const auto nit = bindings_.find(node);
  if (nit == bindings_.end()) return;
  const auto bit = nit->second.find(object_key);
  if (bit == nit->second.end()) return;
  nit->second.erase(bit);
  if (nit->second.empty()) bindings_.erase(nit);
}

const QosPolicyInterceptor::Binding* QosPolicyInterceptor::lookup(
    net::NodeId node, std::string_view object_key) const {
  const auto nit = bindings_.find(node);
  if (nit == bindings_.end()) return nullptr;
  const auto bit = nit->second.find(object_key);
  return bit == nit->second.end() ? nullptr : &bit->second;
}

const EndToEndQosPolicy* QosPolicyInterceptor::binding(net::NodeId node,
                                                       std::string_view object_key) const {
  const Binding* b = lookup(node, object_key);
  return b == nullptr ? nullptr : &b->policy;
}

std::optional<net::Dscp> QosPolicyInterceptor::effective_dscp(
    net::NodeId node, std::string_view object_key, orb::CorbaPriority priority) const {
  const Binding* b = lookup(node, object_key);
  if (b == nullptr) return std::nullopt;
  if (b->policy.explicit_dscp) return *b->policy.explicit_dscp;
  if (b->policy.map_priority_to_dscp) return b->banded.to_dscp(priority);
  return std::nullopt;
}

orb::InterceptStatus QosPolicyInterceptor::establish(orb::ClientRequestContext& ctx) {
  const Binding* b = lookup(ctx.ref->node, ctx.ref->object_key);
  if (b == nullptr) return {};
  const EndToEndQosPolicy& policy = b->policy;
  // An explicit per-invocation priority (InvokeOptions / stub override)
  // wins over the binding policy.
  const bool caller_pinned = ctx.options != nullptr && ctx.options->priority.has_value();
  if (policy.priority && !caller_pinned) ctx.priority = *policy.priority;
  if (policy.explicit_dscp) {
    ctx.dscp_override = *policy.explicit_dscp;
  } else if (policy.map_priority_to_dscp) {
    ctx.dscp_override = b->banded.to_dscp(ctx.priority);
  }
  if (policy.flow && ctx.flow == net::kNoFlow) ctx.flow = *policy.flow;
  if (policy.oneway_batching) {
    ctx.batch_flush_override = policy.oneway_batching->flush_deadline;
  }
  return {};
}

}  // namespace aqm::core

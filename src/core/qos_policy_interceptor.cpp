#include "core/qos_policy_interceptor.hpp"

#include "orb/orb.hpp"

namespace aqm::core {

QosPolicyInterceptor& QosPolicyInterceptor::install(orb::OrbEndpoint& orb) {
  if (QosPolicyInterceptor* existing = find(orb)) return *existing;
  return static_cast<QosPolicyInterceptor&>(
      orb.add_client_interceptor(std::make_unique<QosPolicyInterceptor>()));
}

QosPolicyInterceptor* QosPolicyInterceptor::find(orb::OrbEndpoint& orb) {
  return static_cast<QosPolicyInterceptor*>(orb.find_client_interceptor(kName));
}

void QosPolicyInterceptor::bind(net::NodeId node, std::string object_key,
                                EndToEndQosPolicy policy) {
  // Re-stamp in place when the binding exists: the map nodes (and the
  // object-key string) are reused, so a live policy change allocates
  // nothing after the first bind.
  if (rebind(node, object_key, policy)) return;
  Binding binding;
  binding.state.policy = std::move(policy);
  binding.state.version = 1;
  bindings_[node].insert_or_assign(std::move(object_key), std::move(binding));
}

bool QosPolicyInterceptor::rebind(net::NodeId node, std::string_view object_key,
                                  const EndToEndQosPolicy& policy) {
  Binding* b = lookup_mut(node, object_key);
  if (b == nullptr) return false;
  b->state.policy = policy;
  ++b->state.version;
  return true;
}

void QosPolicyInterceptor::unbind(net::NodeId node, std::string_view object_key) {
  const auto nit = bindings_.find(node);
  if (nit == bindings_.end()) return;
  const auto bit = nit->second.find(object_key);
  if (bit == nit->second.end()) return;
  nit->second.erase(bit);
  if (nit->second.empty()) bindings_.erase(nit);
}

const QosPolicyInterceptor::Binding* QosPolicyInterceptor::lookup(
    net::NodeId node, std::string_view object_key) const {
  const auto nit = bindings_.find(node);
  if (nit == bindings_.end()) return nullptr;
  const auto bit = nit->second.find(object_key);
  return bit == nit->second.end() ? nullptr : &bit->second;
}

QosPolicyInterceptor::Binding* QosPolicyInterceptor::lookup_mut(
    net::NodeId node, std::string_view object_key) {
  return const_cast<Binding*>(lookup(node, object_key));
}

const EndToEndQosPolicy* QosPolicyInterceptor::binding(net::NodeId node,
                                                       std::string_view object_key) const {
  const Binding* b = lookup(node, object_key);
  return b == nullptr ? nullptr : &b->state.policy;
}

const QosBindingState* QosPolicyInterceptor::binding_state(
    net::NodeId node, std::string_view object_key) const {
  const Binding* b = lookup(node, object_key);
  return b == nullptr ? nullptr : &b->state;
}

std::optional<net::Dscp> QosPolicyInterceptor::effective_dscp(
    net::NodeId node, std::string_view object_key, orb::CorbaPriority priority) const {
  const Binding* b = lookup(node, object_key);
  if (b == nullptr) return std::nullopt;
  if (b->state.policy.explicit_dscp) return *b->state.policy.explicit_dscp;
  if (b->state.policy.map_priority_to_dscp) return b->banded.to_dscp(priority);
  return std::nullopt;
}

orb::InterceptStatus QosPolicyInterceptor::establish(orb::ClientRequestContext& ctx) {
  // Reads the binding's *current* versioned state on every invocation —
  // a control-plane re-stamp between two calls is visible to the second
  // call with no rebinding and no captured constants anywhere downstream.
  const Binding* b = lookup(ctx.ref->node, ctx.ref->object_key);
  if (b == nullptr) return {};
  const EndToEndQosPolicy& policy = b->state.policy;
  // An explicit per-invocation priority (InvokeOptions / stub override)
  // wins over the binding policy.
  const bool caller_pinned = ctx.options != nullptr && ctx.options->priority.has_value();
  if (policy.priority && !caller_pinned) ctx.priority = *policy.priority;
  if (policy.explicit_dscp) {
    ctx.dscp_override = *policy.explicit_dscp;
  } else if (policy.map_priority_to_dscp) {
    ctx.dscp_override = b->banded.to_dscp(ctx.priority);
  }
  if (policy.flow && ctx.flow == net::kNoFlow) ctx.flow = *policy.flow;
  // Policy deadline: a caller-pinned deadline (InvokeOptions or an earlier
  // interceptor) wins; otherwise the built-in deadline interceptor sees
  // the absolute deadline we stamp here.
  const bool caller_deadline =
      ctx.deadline.has_value() ||
      (ctx.options != nullptr && ctx.options->deadline.has_value());
  if (policy.deadline && !caller_deadline) ctx.deadline = ctx.now + *policy.deadline;
  if (policy.oneway_batching) {
    ctx.batch_flush_override = policy.oneway_batching->flush_deadline;
  }
  return {};
}

}  // namespace aqm::core

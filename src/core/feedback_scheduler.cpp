#include "core/feedback_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace aqm::core {

FeedbackScheduler::FeedbackScheduler(sim::Engine& engine, obs::TelemetryHub& hub,
                                     FeedbackConfig cfg)
    : engine_(engine), hub_(hub), cfg_(cfg) {}

FeedbackScheduler::~FeedbackScheduler() { stop(); }

void FeedbackScheduler::control_cpu(net::FlowId flow, os::Cpu& cpu,
                                    os::ReserveId reserve, Duration period,
                                    bool hard) {
  Controlled& c = flows_[flow];
  c.cpu = &cpu;
  c.reserve = reserve;
  c.period = period;
  c.hard = hard;
  c.applied_compute_ns = 0;
  if (running_) hub_.watch(flow);
}

void FeedbackScheduler::control_rate(net::FlowId flow, net::IntServQueue& queue,
                                     std::uint32_t bucket_bytes) {
  Controlled& c = flows_[flow];
  c.queue = &queue;
  c.bucket_bytes = bucket_bytes;
  c.applied_rate_bps = 0.0;
  if (running_) hub_.watch(flow);
}

void FeedbackScheduler::uncontrol(net::FlowId flow) { flows_.erase(flow); }

void FeedbackScheduler::start() {
  if (running_) return;
  running_ = true;
  // Watch registration is deferred to here so an installed-but-disabled
  // controller adds nothing to the delivery path (DESIGN.md §13): the
  // hub's windowed aggregation for controlled flows begins when the
  // controller does.
  for (auto& [flow, c] : flows_) hub_.watch(flow);
  // First epoch at the next integer multiple of the epoch length strictly
  // after now — the deterministic grid shared with the telemetry window
  // boundaries, independent of when start() was called.
  const std::int64_t e = cfg_.epoch.ns();
  const std::int64_t next = (engine_.now().ns() / e + 1) * e;
  pending_ = engine_.at(TimePoint{next}, [this] { tick(engine_.now()); });
}

void FeedbackScheduler::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(pending_);
}

void FeedbackScheduler::tick(TimePoint now) {
  run_epoch(now);
  if (running_) {
    pending_ = engine_.at(now + cfg_.epoch, [this] { tick(engine_.now()); });
  }
}

double FeedbackScheduler::measure_deficit(const obs::WindowStats& w) const {
  double d = cfg_.miss_weight * w.miss_rate + cfg_.drop_weight * w.drop_rate;
  if (cfg_.latency_target_ms > 0.0 && w.p99_latency_ms > cfg_.latency_target_ms) {
    d += cfg_.latency_weight * (w.p99_latency_ms / cfg_.latency_target_ms - 1.0);
  }
  return d;
}

void FeedbackScheduler::run_epoch(TimePoint now) {
  ++epochs_run_;
  if (flows_.empty()) return;

  // Sense: smoothed deficit per flow, plus the share denominators. Two
  // passes because proportional division needs the pool-wide sums; both
  // iterate the same ordered map, so the visit order (and therefore the
  // hub roll order and any resulting health events) is ascending flow id.
  double cpu_denom = 0.0;
  double net_denom = 0.0;
  for (auto& [flow, c] : flows_) {
    const obs::WindowStats w = hub_.window(flow, now);
    const double measured = measure_deficit(w);
    c.deficit = (1.0 - cfg_.smoothing) * c.deficit + cfg_.smoothing * measured;
    if (c.cpu != nullptr) cpu_denom += cfg_.min_share + c.deficit;
    if (c.queue != nullptr) net_denom += cfg_.min_share + c.deficit;
  }

  // Actuate: proportional-to-deficit shares, re-stamped in place only
  // when outside the hysteresis dead zone.
  for (auto& [flow, c] : flows_) {
    const double weight = cfg_.min_share + c.deficit;
    if (c.cpu != nullptr && cpu_denom > 0.0) {
      const double share = weight / cpu_denom;
      const double util = share * cfg_.cpu_pool_utilization;
      std::int64_t compute_ns = static_cast<std::int64_t>(
          std::floor(util * static_cast<double>(c.period.ns())));
      compute_ns = std::clamp<std::int64_t>(compute_ns, 1, c.period.ns());
      const std::int64_t cur = c.applied_compute_ns;
      const bool outside_band =
          cur <= 0 || std::abs(static_cast<double>(compute_ns - cur)) >
                          cfg_.hysteresis * static_cast<double>(cur);
      if (outside_band && compute_ns != cur) {
        os::ReserveSpec spec;
        spec.compute = Duration{compute_ns};
        spec.period = c.period;
        spec.hard = c.hard;
        const auto status = c.cpu->update_reserve(c.reserve, spec);
        if (status.ok()) {
          c.applied_compute_ns = compute_ns;
          ++restamps_applied_;
        } else {
          ++restamps_rejected_;
          AQM_DEBUG() << "feedback: cpu re-stamp rejected for flow " << flow
                      << ": " << status.error();
        }
      }
    }
    if (c.queue != nullptr && net_denom > 0.0) {
      const double share = weight / net_denom;
      const double rate = share * cfg_.net_pool_bps;
      const double cur = c.applied_rate_bps;
      const bool outside_band =
          cur <= 0.0 || std::abs(rate - cur) > cfg_.hysteresis * cur;
      if (outside_band && rate > 0.0) {
        if (c.queue->update_reservation(flow, rate, c.bucket_bytes, now)) {
          c.applied_rate_bps = rate;
          ++restamps_applied_;
        } else {
          ++restamps_rejected_;
          AQM_DEBUG() << "feedback: rate re-stamp skipped, flow " << flow
                      << " has no reservation on the controlled queue";
        }
      }
    }
  }
}

double FeedbackScheduler::deficit(net::FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? 0.0 : it->second.deficit;
}

}  // namespace aqm::core

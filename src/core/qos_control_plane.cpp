#include "core/qos_control_plane.hpp"

#include <memory>
#include <utility>

#include "orb/cdr.hpp"
#include "orb/servant.hpp"

namespace aqm::core {
namespace {

void encode_override(orb::CdrWriter& w, const PolicyOverride& ov) {
  w.write_bool(ov.priority.has_value());
  if (ov.priority) w.write_i32(*ov.priority);
  w.write_bool(ov.dscp.has_value());
  if (ov.dscp) w.write_u8(*ov.dscp);
  w.write_bool(ov.deadline.has_value());
  if (ov.deadline) w.write_i64(ov.deadline->ns());
  w.write_bool(ov.server_cpu_reserve.has_value());
  if (ov.server_cpu_reserve) {
    w.write_i64(ov.server_cpu_reserve->compute.ns());
    w.write_i64(ov.server_cpu_reserve->period.ns());
    w.write_bool(ov.server_cpu_reserve->hard);
  }
  w.write_bool(ov.network_reservation.has_value());
  if (ov.network_reservation) {
    w.write_f64(ov.network_reservation->rate_bps);
    w.write_u32(ov.network_reservation->bucket_bytes);
  }
  w.write_bool(ov.oneway_batching.has_value());
  if (ov.oneway_batching) {
    w.write_u32(ov.oneway_batching->max_bytes);
    w.write_u32(ov.oneway_batching->max_messages);
    w.write_i64(ov.oneway_batching->flush_deadline.ns());
  }
}

PolicyOverride decode_override(orb::CdrReader& r) {
  PolicyOverride ov;
  if (r.read_bool()) ov.priority = r.read_i32();
  if (r.read_bool()) ov.dscp = r.read_u8();
  if (r.read_bool()) ov.deadline = Duration{r.read_i64()};
  if (r.read_bool()) {
    os::ReserveSpec spec;
    spec.compute = Duration{r.read_i64()};
    spec.period = Duration{r.read_i64()};
    spec.hard = r.read_bool();
    ov.server_cpu_reserve = spec;
  }
  if (r.read_bool()) {
    net::FlowSpec spec;
    spec.rate_bps = r.read_f64();
    spec.bucket_bytes = r.read_u32();
    ov.network_reservation = spec;
  }
  if (r.read_bool()) {
    OnewayBatchingPolicy batching;
    batching.max_bytes = r.read_u32();
    batching.max_messages = r.read_u32();
    batching.flush_deadline = Duration{r.read_i64()};
    ov.oneway_batching = batching;
  }
  return ov;
}

std::vector<std::uint8_t> encode_status_reply(const Status<std::string>& status) {
  orb::CdrWriter w;
  w.write_bool(status.ok());
  if (!status.ok()) w.write_string(status.error());
  return w.take();
}

Status<std::string> decode_status_reply(const std::vector<std::uint8_t>& body) {
  orb::CdrReader r(body);
  if (r.read_bool()) return {};
  return Status<std::string>::err(r.read_string());
}

}  // namespace

EndToEndQosPolicy merge_override(const EndToEndQosPolicy& base, const PolicyOverride& ov) {
  EndToEndQosPolicy merged = base;
  if (ov.priority) merged.priority = *ov.priority;
  if (ov.dscp) merged.explicit_dscp = *ov.dscp;
  if (ov.deadline) merged.deadline = *ov.deadline;
  if (ov.server_cpu_reserve) merged.server_cpu_reserve = *ov.server_cpu_reserve;
  if (ov.network_reservation) merged.network_reservation = *ov.network_reservation;
  if (ov.oneway_batching) merged.oneway_batching = *ov.oneway_batching;
  return merged;
}

QosControlPlane::QosControlPlane(orb::Poa& poa) {
  // Override signaling is control-plane work: cheap and fast, like the
  // CPU-reservation manager it sits beside.
  auto servant = std::make_shared<orb::FunctionServant>(
      microseconds(30), [this](orb::ServerRequest& req) {
        if (req.operation == kOverrideFlowOp) {
          orb::CdrReader r(req.body);
          const net::FlowId flow = r.read_u64();
          const PolicyOverride ov = decode_override(r);
          req.reply_body = encode_status_reply(override_flow(flow, ov));
          return;
        }
        if (req.operation == kClearOverrideOp) {
          orb::CdrReader r(req.body);
          req.reply_body = encode_status_reply(clear_override(r.read_u64()));
          return;
        }
        throw orb::BadParam("unknown control-plane operation: " + req.operation);
      });
  ref_ = poa.activate_object(kQosControlObjectId, std::move(servant));
}

void QosControlPlane::manage(net::FlowId flow, QoSSession& session) {
  Managed m;
  m.session = &session;
  m.base = session.active_policy();
  managed_.insert_or_assign(flow, std::move(m));
}

void QosControlPlane::unmanage(net::FlowId flow) { managed_.erase(flow); }

Status<std::string> QosControlPlane::override_flow(net::FlowId flow,
                                                   const PolicyOverride& ov) {
  const auto it = managed_.find(flow);
  if (it == managed_.end()) {
    return Status<std::string>::err("flow is not under control-plane management");
  }
  Managed& m = it->second;
  m.ov = ov;
  m.overridden = true;
  ++overrides_applied_;
  // The session's diff takes it from here: unchanged mechanisms are not
  // touched, per-invocation knobs re-stamp the versioned binding in place.
  m.session->update(merge_override(m.base, ov));
  return {};
}

Status<std::string> QosControlPlane::clear_override(net::FlowId flow) {
  const auto it = managed_.find(flow);
  if (it == managed_.end()) {
    return Status<std::string>::err("flow is not under control-plane management");
  }
  Managed& m = it->second;
  if (!m.overridden) return {};  // idempotent: nothing to clear
  m.ov = PolicyOverride{};
  m.overridden = false;
  m.session->update(m.base);
  return {};
}

const PolicyOverride* QosControlPlane::active_override(net::FlowId flow) const {
  const auto it = managed_.find(flow);
  if (it == managed_.end() || !it->second.overridden) return nullptr;
  return &it->second.ov;
}

QosControlClient::QosControlClient(orb::OrbEndpoint& orb, orb::ObjectRef control)
    : stub_(orb, std::move(control)) {}

void QosControlClient::override_flow(net::FlowId flow, const PolicyOverride& ov,
                                     Callback cb, Duration timeout) {
  orb::CdrWriter w;
  w.write_u64(flow);
  encode_override(w, ov);
  stub_.twoway(kOverrideFlowOp, w.take(),
               [cb = std::move(cb)](orb::CompletionStatus status,
                                    std::vector<std::uint8_t> body) {
                 if (!cb) return;
                 if (status != orb::CompletionStatus::Ok) {
                   cb(Status<std::string>::err(std::string("rpc failed: ") +
                                               orb::to_string(status)));
                   return;
                 }
                 try {
                   cb(decode_status_reply(body));
                 } catch (const orb::MarshalError& e) {
                   cb(Status<std::string>::err(e.what()));
                 }
               },
               timeout);
}

void QosControlClient::clear_override(net::FlowId flow, Callback cb, Duration timeout) {
  orb::CdrWriter w;
  w.write_u64(flow);
  stub_.twoway(kClearOverrideOp, w.take(),
               [cb = std::move(cb)](orb::CompletionStatus status,
                                    std::vector<std::uint8_t> body) {
                 if (!cb) return;
                 if (status != orb::CompletionStatus::Ok) {
                   cb(Status<std::string>::err(std::string("rpc failed: ") +
                                               orb::to_string(status)));
                   return;
                 }
                 try {
                   cb(decode_status_reply(body));
                 } catch (const orb::MarshalError& e) {
                   cb(Status<std::string>::err(e.what()));
                 }
               },
               timeout);
}

}  // namespace aqm::core

#include "media/video_sink.hpp"

namespace aqm::media {

VideoSinkStats::VideoSinkStats(sim::Engine& engine, GopStructure gop)
    : engine_(engine), gop_(std::move(gop)) {}

void VideoSinkStats::on_source(const VideoFrame&) { ++source_; }

void VideoSinkStats::on_transmitted(const VideoFrame& f) {
  ++transmitted_;
  ++transmitted_by_type_[f.type];
  tx_marks_.add(f.capture_time, 1.0);
}

void VideoSinkStats::on_received(const VideoFrame& f) {
  ++received_;
  ++received_by_type_[f.type];
  const Duration latency = engine_.now() - f.capture_time;
  latency_ms_.add(engine_.now(), latency.millis());
  rx_marks_.add(engine_.now(), 1.0);
  rx_capture_marks_.add(f.capture_time, 1.0);
  const std::uint64_t gop_index = f.index / gop_.gop_length();
  const std::size_t position = static_cast<std::size_t>(f.index % gop_.gop_length());
  gops_[gop_index].received_positions.insert(position);
}

std::uint64_t VideoSinkStats::received_of(FrameType t) const {
  const auto it = received_by_type_.find(t);
  return it == received_by_type_.end() ? 0 : it->second;
}

std::uint64_t VideoSinkStats::transmitted_of(FrameType t) const {
  const auto it = transmitted_by_type_.find(t);
  return it == transmitted_by_type_.end() ? 0 : it->second;
}

bool VideoSinkStats::anchor_received(std::uint64_t gop_index, std::size_t position) const {
  const auto it = gops_.find(gop_index);
  return it != gops_.end() && it->second.received_positions.count(position) > 0;
}

bool VideoSinkStats::frame_decodable(std::uint64_t gop_index, std::size_t position) const {
  const std::string& pattern = gop_.pattern();
  const char kind = pattern[position];
  if (kind == 'I') return true;
  if (kind == 'P') {
    // Needs every earlier anchor (I or P) in the same GOP.
    for (std::size_t i = 0; i < position; ++i) {
      if (pattern[i] != 'B' && !anchor_received(gop_index, i)) return false;
    }
    return true;
  }
  // B frame: needs the previous anchor chain and the next anchor.
  std::size_t prev_anchor = 0;
  bool have_prev = false;
  for (std::size_t i = 0; i < position; ++i) {
    if (pattern[i] != 'B') {
      prev_anchor = i;
      have_prev = true;
    }
  }
  if (!have_prev) return false;
  // All anchors up to and including prev_anchor must be decodable chain.
  for (std::size_t i = 0; i <= prev_anchor; ++i) {
    if (pattern[i] != 'B' && !anchor_received(gop_index, i)) return false;
  }
  // Next anchor: first non-B after `position` in this GOP, else next GOP's I.
  for (std::size_t i = position + 1; i < pattern.size(); ++i) {
    if (pattern[i] != 'B') return anchor_received(gop_index, i);
  }
  return anchor_received(gop_index + 1, 0);
}

std::uint64_t VideoSinkStats::decodable_count() const {
  std::uint64_t count = 0;
  for (const auto& [gop_index, record] : gops_) {
    for (const std::size_t position : record.received_positions) {
      if (frame_decodable(gop_index, position)) ++count;
    }
  }
  return count;
}

std::uint64_t VideoSinkStats::transmitted_between(TimePoint from, TimePoint to) const {
  return tx_marks_.stats_between(from, to).count();
}

std::uint64_t VideoSinkStats::received_between(TimePoint from, TimePoint to) const {
  return rx_marks_.stats_between(from, to).count();
}

std::uint64_t VideoSinkStats::received_captured_between(TimePoint from, TimePoint to) const {
  return rx_capture_marks_.stats_between(from, to).count();
}

}  // namespace aqm::media

#include "media/gop.hpp"

#include <cassert>
#include <stdexcept>

namespace aqm::media {

GopStructure::GopStructure(std::string pattern, std::uint32_t i_bytes,
                           std::uint32_t p_bytes, std::uint32_t b_bytes)
    : pattern_(std::move(pattern)), i_bytes_(i_bytes), p_bytes_(p_bytes), b_bytes_(b_bytes) {
  if (pattern_.empty() || pattern_.front() != 'I') {
    throw std::invalid_argument("GOP pattern must start with an I frame");
  }
  for (const char c : pattern_) {
    if (c != 'I' && c != 'P' && c != 'B') {
      throw std::invalid_argument("GOP pattern may only contain I/P/B");
    }
  }
  assert(i_bytes_ > 0 && p_bytes_ > 0 && b_bytes_ > 0);
}

FrameType GopStructure::type_at(std::uint64_t frame_index) const {
  switch (pattern_[frame_index % pattern_.size()]) {
    case 'I': return FrameType::I;
    case 'P': return FrameType::P;
    default: return FrameType::B;
  }
}

std::uint32_t GopStructure::size_of(FrameType t) const {
  switch (t) {
    case FrameType::I: return i_bytes_;
    case FrameType::P: return p_bytes_;
    case FrameType::B: return b_bytes_;
  }
  return 0;
}

double GopStructure::rate_bps(double fps) const {
  return rate_bps_filtered(fps, true, true, true);
}

double GopStructure::rate_bps_filtered(double fps, bool pass_i, bool pass_p,
                                       bool pass_b) const {
  std::uint64_t gop_bytes = 0;
  for (const char c : pattern_) {
    if (c == 'I' && pass_i) gop_bytes += i_bytes_;
    if (c == 'P' && pass_p) gop_bytes += p_bytes_;
    if (c == 'B' && pass_b) gop_bytes += b_bytes_;
  }
  const double gop_seconds = static_cast<double>(pattern_.size()) / fps;
  return static_cast<double>(gop_bytes) * 8.0 / gop_seconds;
}

GopStructure GopStructure::mpeg1_paper_profile() {
  // 15-frame GOP at 30 fps -> 2 I-frames per second (paper Section 4:
  // "in the case of MPEG-1 where I-frames ... are two fps").
  // Sizes chosen in the classic I:P:B = 4:2:1 ratio so the full stream is
  // ~1.2 Mbps: per GOP 1*I + 4*P + 10*B = (4+8+10)*w = 22w bytes per 0.5 s.
  // w = 3400 -> 74,800 B / 0.5 s = 1.197 Mbps.
  return GopStructure{"IBBPBBPBBPBBPBB", 4 * 3400, 2 * 3400, 3400};
}

}  // namespace aqm::media

// QuO-controlled frame filtering: the paper's data-shaping adaptation.
// "The frame filtering cases dynamically reacted to network load by
// filtering frames down to 10 fps or 2 fps, whichever the network would
// support." With the 15-frame GOP at 30 fps: dropping B frames leaves
// I+P at 10 fps; dropping B and P leaves I-only at 2 fps.
#pragma once

#include <cstdint>
#include <string>

#include "media/frame.hpp"

namespace aqm::media {

enum class FilterLevel : std::uint8_t {
  Full,    // pass everything (30 fps)
  IpOnly,  // drop B frames (10 fps)
  IOnly,   // I frames only (2 fps)
};

[[nodiscard]] constexpr const char* to_string(FilterLevel level) {
  switch (level) {
    case FilterLevel::Full: return "full-30fps";
    case FilterLevel::IpOnly: return "ip-10fps";
    case FilterLevel::IOnly: return "i-2fps";
  }
  return "?";
}

class FrameFilter {
 public:
  explicit FrameFilter(FilterLevel level = FilterLevel::Full) : level_(level) {}

  void set_level(FilterLevel level) { level_ = level; }
  [[nodiscard]] FilterLevel level() const { return level_; }

  /// Whether a frame of this type passes the current level.
  [[nodiscard]] bool passes(FrameType type) const {
    switch (level_) {
      case FilterLevel::Full: return true;
      case FilterLevel::IpOnly: return type != FrameType::B;
      case FilterLevel::IOnly: return type == FrameType::I;
    }
    return true;
  }

  /// Applies the filter and counts the outcome.
  [[nodiscard]] bool filter(const VideoFrame& f) {
    if (passes(f.type)) {
      ++forwarded_;
      return true;
    }
    ++dropped_;
    return false;
  }

  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  FilterLevel level_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace aqm::media

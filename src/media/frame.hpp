// Video frame model. The experiments only need frame timing, types and
// sizes (not pixels): an MPEG-1 stream is a sequence of I/P/B frames in a
// fixed group-of-pictures pattern.
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace aqm::media {

enum class FrameType : std::uint8_t { I, P, B };

[[nodiscard]] constexpr char to_char(FrameType t) {
  switch (t) {
    case FrameType::I: return 'I';
    case FrameType::P: return 'P';
    case FrameType::B: return 'B';
  }
  return '?';
}

struct VideoFrame {
  std::uint64_t index = 0;       // position in the stream (display order)
  FrameType type = FrameType::I;
  std::uint32_t size_bytes = 0;
  TimePoint capture_time{};      // when the source emitted it
};

}  // namespace aqm::media

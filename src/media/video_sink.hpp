// Receiver-side video statistics: delivery counts by frame type, latency
// and jitter, per-second delivery series (the paper's Figure 7), and
// MPEG-decodability accounting (a P frame is useless without the anchor
// frames it references).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "media/gop.hpp"
#include "sim/engine.hpp"

namespace aqm::media {

class VideoSinkStats {
 public:
  VideoSinkStats(sim::Engine& engine, GopStructure gop);

  /// Every frame the source produced (pre-filter).
  void on_source(const VideoFrame& f);
  /// Every frame actually transmitted (post-filter).
  void on_transmitted(const VideoFrame& f);
  /// Every frame that arrived end-to-end.
  void on_received(const VideoFrame& f);

  [[nodiscard]] std::uint64_t source_count() const { return source_; }
  [[nodiscard]] std::uint64_t transmitted_count() const { return transmitted_; }
  [[nodiscard]] std::uint64_t received_count() const { return received_; }
  [[nodiscard]] std::uint64_t received_of(FrameType t) const;
  [[nodiscard]] std::uint64_t transmitted_of(FrameType t) const;

  /// Frames received AND whose MPEG reference chain was also received:
  /// I stands alone; P needs every earlier anchor (I/P) of its GOP;
  /// B additionally needs the next anchor (the following GOP's I for the
  /// trailing B frames of a GOP).
  [[nodiscard]] std::uint64_t decodable_count() const;

  /// One-way latency of delivered frames, in milliseconds, over time.
  [[nodiscard]] const TimeSeries& latency_series() const { return latency_ms_; }
  /// Per-second counts of transmitted frames.
  [[nodiscard]] const TimeSeries& transmit_series() const { return tx_marks_; }
  /// Per-second counts of received frames.
  [[nodiscard]] const TimeSeries& receive_series() const { return rx_marks_; }

  /// Latency stats over a time window (e.g. the paper's under-load window).
  [[nodiscard]] RunningStats latency_between(TimePoint from, TimePoint to) const {
    return latency_ms_.stats_between(from, to);
  }

  /// Frames transmitted with capture time inside a window.
  [[nodiscard]] std::uint64_t transmitted_between(TimePoint from, TimePoint to) const;
  /// Frames received with *arrival* time inside a window.
  [[nodiscard]] std::uint64_t received_between(TimePoint from, TimePoint to) const;
  /// Frames received whose *capture* time lies inside a window — pairs with
  /// transmitted_between() for "% of frames sent under load that were
  /// delivered" accounting (paper Table 1).
  [[nodiscard]] std::uint64_t received_captured_between(TimePoint from, TimePoint to) const;

 private:
  struct GopRecord {
    std::set<std::size_t> received_positions;
  };

  [[nodiscard]] bool frame_decodable(std::uint64_t gop_index, std::size_t position) const;
  [[nodiscard]] bool anchor_received(std::uint64_t gop_index, std::size_t position) const;

  sim::Engine& engine_;
  GopStructure gop_;
  std::uint64_t source_ = 0;
  std::uint64_t transmitted_ = 0;
  std::uint64_t received_ = 0;
  std::map<FrameType, std::uint64_t> received_by_type_;
  std::map<FrameType, std::uint64_t> transmitted_by_type_;
  std::map<std::uint64_t, GopRecord> gops_;
  TimeSeries latency_ms_;
  TimeSeries tx_marks_;          // value 1 per transmitted frame, at capture time
  TimeSeries rx_marks_;          // value 1 per received frame, at arrival time
  TimeSeries rx_capture_marks_;  // value 1 per received frame, at capture time
};

}  // namespace aqm::media

// Group-of-pictures structure: the repeating I/P/B pattern of an MPEG
// stream plus per-type frame sizes.
#pragma once

#include <cstdint>
#include <string>

#include "media/frame.hpp"

namespace aqm::media {

class GopStructure {
 public:
  /// `pattern` is a string over {I, P, B}, e.g. "IBBPBBPBBPBBPBB".
  GopStructure(std::string pattern, std::uint32_t i_bytes, std::uint32_t p_bytes,
               std::uint32_t b_bytes);

  [[nodiscard]] FrameType type_at(std::uint64_t frame_index) const;
  [[nodiscard]] std::uint32_t size_of(FrameType t) const;
  [[nodiscard]] std::size_t gop_length() const { return pattern_.size(); }
  [[nodiscard]] const std::string& pattern() const { return pattern_; }

  /// Average bit rate of the full stream at the given frame rate.
  [[nodiscard]] double rate_bps(double fps) const;
  /// Average bit rate when only the given frame types pass (e.g. I+P).
  [[nodiscard]] double rate_bps_filtered(double fps, bool pass_i, bool pass_p,
                                         bool pass_b) const;

  /// The paper's MPEG-1 profile: 30 fps, I-frames at 2 per second
  /// (GOP of 15, "IBBPBBPBBPBBPBB"), sized for ~1.2 Mbps aggregate.
  /// I+P only (10 fps) is ~654 kbps — matching the partial 670 kbps
  /// reservation; I-only (2 fps) is ~218 kbps.
  [[nodiscard]] static GopStructure mpeg1_paper_profile();

 private:
  std::string pattern_;
  std::uint32_t i_bytes_;
  std::uint32_t p_bytes_;
  std::uint32_t b_bytes_;
};

}  // namespace aqm::media

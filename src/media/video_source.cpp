#include "media/video_source.hpp"

#include <cassert>
#include <cmath>

namespace aqm::media {

VideoSource::VideoSource(sim::Engine& engine, GopStructure gop, double fps, FrameSink sink)
    : engine_(engine),
      gop_(std::move(gop)),
      fps_(fps),
      sink_(std::move(sink)),
      timer_(engine, Duration{static_cast<std::int64_t>(std::llround(1e9 / fps))},
             [this] { emit(); }) {
  assert(fps > 0.0);
  assert(sink_);
}

void VideoSource::start() { timer_.start_after(Duration::zero() + timer_.period()); }

void VideoSource::stop() { timer_.stop(); }

void VideoSource::run_between(TimePoint from, TimePoint until) {
  assert(from < until);
  engine_.at(from, [this] { start(); });
  engine_.at(until, [this] { stop(); });
}

void VideoSource::emit() {
  VideoFrame f;
  f.index = next_index_++;
  f.type = gop_.type_at(f.index);
  f.size_bytes = gop_.size_of(f.type);
  f.capture_time = engine_.now();
  sink_(f);
}

}  // namespace aqm::media

// Frame source: replays an MPEG-structured stream at a fixed frame rate
// (the paper's "video source processes ... that replay from a file").
#pragma once

#include <cstdint>
#include <functional>

#include "common/time.hpp"
#include "media/gop.hpp"
#include "sim/engine.hpp"

namespace aqm::media {

class VideoSource {
 public:
  using FrameSink = std::function<void(const VideoFrame&)>;

  VideoSource(sim::Engine& engine, GopStructure gop, double fps, FrameSink sink);
  ~VideoSource() { stop(); }
  VideoSource(const VideoSource&) = delete;
  VideoSource& operator=(const VideoSource&) = delete;

  void start();
  void stop();
  /// Convenience: schedules start at `from` and stop at `until`.
  void run_between(TimePoint from, TimePoint until);

  [[nodiscard]] bool running() const { return timer_.running(); }
  [[nodiscard]] double fps() const { return fps_; }
  [[nodiscard]] const GopStructure& gop() const { return gop_; }
  [[nodiscard]] std::uint64_t frames_emitted() const { return next_index_; }

 private:
  void emit();

  sim::Engine& engine_;
  GopStructure gop_;
  double fps_;
  FrameSink sink_;
  sim::PeriodicTimer timer_;
  std::uint64_t next_index_ = 0;
};

}  // namespace aqm::media
